package trace

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"udwn/internal/sim"
)

// fuzzIndexSeeds builds the committed seed corpus of FuzzIndexDecode: each
// input is one index-frame payload, covering the well-formed cases and one
// representative per hostile class the decoder must survive.
func fuzzIndexSeeds(t testing.TB) map[string][]byte {
	exact := indexEntry{off: 0, plen: 900, events: 30, minTick: 100, maxTick: 180,
		flags: flagSeized | flagDecodes, exact: []int{3, 7, 1024, 4711}}
	big := indexEntry{off: 0, plen: 64 << 10, events: 2000, minTick: 0, maxTick: 5000, flags: flagMass}
	big.bloom = make([]byte, bloomSize(exactMaxIDs+100))
	for id := 0; id < exactMaxIDs+100; id++ {
		bloomAdd(big.bloom, id*13)
	}
	none := indexEntry{off: 0, plen: 40, events: 1, minTick: 9, maxTick: 9}

	valid := appendIndexPayload(nil, []indexEntry{exact})
	multi := appendIndexPayload(nil, []indexEntry{exact, big, none})

	newer := binary.AppendUvarint(nil, indexVersion+1)
	newer = append(newer, valid[1:]...)

	hugeCount := binary.AppendUvarint(nil, indexVersion)
	hugeCount = binary.AppendUvarint(hugeCount, 1<<40)

	hugeBloom := appendIndexPayload(nil, nil)[:1] // version only
	hugeBloom = binary.AppendUvarint(hugeBloom, 1)
	hugeBloom = binary.AppendUvarint(hugeBloom, 0) // off
	hugeBloom = binary.AppendUvarint(hugeBloom, 8) // plen
	hugeBloom = binary.AppendUvarint(hugeBloom, 1) // events
	hugeBloom = binary.AppendUvarint(hugeBloom, 0) // minTick
	hugeBloom = binary.AppendUvarint(hugeBloom, 0) // span
	hugeBloom = binary.AppendUvarint(hugeBloom, 0) // flags
	hugeBloom = binary.AppendUvarint(hugeBloom, 2) // kind: bloom
	hugeBloom = binary.AppendUvarint(hugeBloom, 1<<30)

	return map[string][]byte{
		"seed_valid_exact": valid,
		"seed_valid_multi": multi,
		"seed_torn":        multi[:len(multi)/2],
		"seed_newer_ver":   newer,
		"seed_huge_count":  hugeCount,
		"seed_huge_bloom":  hugeBloom,
		"seed_empty":       {},
	}
}

// TestFuzzIndexCorpusSeeds keeps the committed FuzzIndexDecode corpus in
// sync with fuzzIndexSeeds (same -update discipline as TestFuzzCorpusSeeds).
func TestFuzzIndexCorpusSeeds(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzIndexDecode")
	seeds := fuzzIndexSeeds(t)
	if *update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, data := range seeds {
		body, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("corpus seed missing (regenerate with -update): %v", err)
		}
		want := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if string(body) != want {
			t.Fatalf("corpus seed %s is stale; regenerate with -update", name)
		}
	}
}

// spliceIndexFrame builds a trace whose first frame is a CRC-valid index
// frame with the given (arbitrary, possibly hostile) payload, followed by
// the honestly indexed frames of events.
func spliceIndexFrame(t testing.TB, payload []byte, events []sim.SlotEvent) []byte {
	t.Helper()
	honest, _ := encodeIndexed(t, events, 25)
	var out bytes.Buffer
	out.Write(honest[:headerSize])
	out.Write(indexMagic[:])
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	crc := crc32.Checksum(indexMagic[:], traceCRC)
	crc = crc32.Update(crc, traceCRC, payload)
	binary.LittleEndian.PutUint32(hdr[4:], crc)
	out.Write(hdr[:])
	out.Write(payload)
	out.Write(honest[headerSize:])
	return out.Bytes()
}

// FuzzIndexDecode throws arbitrary bytes at the index-frame payload decoder
// and, spliced as a CRC-valid index frame, at the reader and the query
// planner. The decoder must never panic or allocate beyond its caps and
// must round-trip whatever it accepts; the reader must decode the spliced
// trace exactly like the honest one; and a query planned over the hostile
// frame must return only events that genuinely match the predicate, each
// present in the honest decode — a forged index can suppress frames, never
// fabricate or corrupt events.
func FuzzIndexDecode(f *testing.F) {
	for _, data := range fuzzIndexSeeds(f) {
		f.Add(data)
	}
	events := Canonicalize(randomEvents(71, 75))

	f.Fuzz(func(t *testing.T, payload []byte) {
		entries, err := decodeIndexPayload(payload)
		if err != nil && entries != nil {
			t.Fatal("decodeIndexPayload returned entries alongside an error")
		}
		if len(entries) > len(payload) {
			t.Fatalf("%d entries from %d payload bytes", len(entries), len(payload))
		}
		for _, e := range entries {
			if len(e.bloom) > maxBloomBytes {
				t.Fatalf("bloom of %d bytes exceeds cap %d", len(e.bloom), maxBloomBytes)
			}
			if len(e.exact) > len(payload) {
				t.Fatalf("%d exact ids from %d payload bytes", len(e.exact), len(payload))
			}
			if e.maxTick < e.minTick || e.plen > maxFramePayload {
				t.Fatalf("decoded out-of-contract entry %+v", e)
			}
		}
		if err == nil && entries != nil {
			back, rerr := decodeIndexPayload(appendIndexPayload(nil, entries))
			if rerr != nil || !reflect.DeepEqual(back, entries) {
				t.Fatalf("accepted entries did not round-trip: %v", rerr)
			}
		}

		if len(payload) == 0 || len(payload) > maxFramePayload {
			// Not representable as a frame (the reader rejects plen 0 and
			// plen > maxFramePayload as torn); the decoder checks above are
			// the whole property for such inputs.
			return
		}
		spliced := spliceIndexFrame(t, payload, events)

		// The streaming reader ignores index entries entirely: the spliced
		// trace must decode to exactly the original events.
		got, _, rerr := ReadEvents(bytes.NewReader(spliced))
		if rerr != nil {
			t.Fatalf("spliced trace rejected: %v", rerr)
		}
		if !reflect.DeepEqual(Canonicalize(got), events) {
			t.Fatalf("spliced trace decoded %d of %d events", len(got), len(events))
		}

		// Vary the predicate with the payload so the fuzzer explores the
		// planner's pruning branches.
		h := crc32.Checksum(payload, traceCRC)
		pred := Predicate{
			MinTick: int(h % 64),
			Seized:  h&(1<<8) != 0,
			Decodes: h&(1<<9) != 0,
		}
		if h&(1<<10) != 0 {
			pred.Nodes = []int{int(h>>16) % 256}
		}
		qgot, _, qerr := QueryAll(bytes.NewReader(spliced), pred)
		if qerr != nil {
			t.Fatalf("query over spliced trace: %v", qerr)
		}
		honest := filterEvents(events, pred)
		// qgot must be an ordered subsequence of the honest filter result:
		// never a fabricated, duplicated or non-matching event.
		j := 0
		for _, ev := range qgot {
			if !pred.Match(ev) {
				t.Fatalf("query returned non-matching event %+v", ev)
			}
			for j < len(honest) && !reflect.DeepEqual(honest[j], ev) {
				j++
			}
			if j == len(honest) {
				t.Fatalf("query returned event not in the honest filter result: %+v", ev)
			}
			j++
		}
	})
}
