package trace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"testing"

	"udwn/internal/rng"
	"udwn/internal/sim"
)

// randomEvents draws a deterministic sequence of arbitrary *valid* slot
// events: non-negative fields, ascending ticks, id lists of varying length
// (including empty). Silent slots are avoided so recorders keep every event.
func randomEvents(seed uint64, n int) []sim.SlotEvent {
	r := rng.New(seed)
	events := make([]sim.SlotEvent, 0, n)
	tick := 0
	for i := 0; i < n; i++ {
		tick += r.Intn(3)
		ev := sim.SlotEvent{
			Tick:    tick,
			Slot:    r.Intn(2),
			Decodes: r.Intn(50),
			CDBusy:  r.Intn(20),
			CDIdle:  r.Intn(20),
			Acks:    r.Intn(10),
			NTDs:    r.Intn(10),
			Seized:  r.Intn(3),
		}
		for j := r.Intn(8); j > 0; j-- {
			ev.Transmitters = append(ev.Transmitters, r.Intn(1<<r.Intn(20)))
		}
		for j := r.Intn(4); j > 0; j-- {
			ev.MassDeliverers = append(ev.MassDeliverers, r.Intn(4096))
		}
		for j := r.Intn(6); j > 0; j-- {
			ev.Decoders = append(ev.Decoders, r.Intn(4096))
		}
		if len(ev.Transmitters) == 0 && ev.Decodes == 0 {
			ev.Decodes = 1 // keep the event non-silent
		}
		events = append(events, ev)
	}
	return events
}

// encodeBinary runs events through the binary writer, cutting a frame after
// every flushEvery events (0 = let the size threshold decide).
func encodeBinary(t testing.TB, events []sim.SlotEvent, flushEvery int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewBinary(&buf)
	for i, ev := range events {
		w.Record(ev)
		if flushEvery > 0 && (i+1)%flushEvery == 0 {
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != len(events) {
		t.Fatalf("writer recorded %d of %d events", w.Events(), len(events))
	}
	if w.BytesWritten() != int64(buf.Len()) {
		t.Fatalf("BytesWritten = %d, buffer holds %d", w.BytesWritten(), buf.Len())
	}
	return buf.Bytes()
}

func decodeBinary(t testing.TB, data []byte) []sim.SlotEvent {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var events []sim.SlotEvent
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	if r.Truncated() {
		t.Fatal("clean trace reported as truncated")
	}
	return events
}

// TestBinaryRoundTripProperty: arbitrary valid event sequences encode and
// decode identically (after canonicalization) through the binary format,
// across frame-cut patterns, and agree with the JSONL reference decoding of
// the same sequence.
func TestBinaryRoundTripProperty(t *testing.T) {
	for _, tc := range []struct {
		seed       uint64
		n          int
		flushEvery int
	}{
		{seed: 1, n: 1, flushEvery: 0},
		{seed: 2, n: 100, flushEvery: 0},
		{seed: 3, n: 100, flushEvery: 1},   // one frame per event
		{seed: 4, n: 500, flushEvery: 7},   // ragged frames
		{seed: 5, n: 20000, flushEvery: 0}, // crosses the size threshold
		{seed: 6, n: 0, flushEvery: 0},     // empty trace: header only
	} {
		events := randomEvents(tc.seed, tc.n)
		want := Canonicalize(append([]sim.SlotEvent(nil), events...))

		data := encodeBinary(t, events, tc.flushEvery)
		got := Canonicalize(decodeBinary(t, data))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: binary round trip diverged (%d events in, %d out)", tc.seed, len(want), len(got))
		}

		var jb bytes.Buffer
		jw := NewJSONL(&jb)
		for _, ev := range events {
			jw.Record(ev)
		}
		if err := jw.Flush(); err != nil {
			t.Fatal(err)
		}
		jev, err := ReadJSONL(&jb)
		if err != nil {
			t.Fatal(err)
		}
		jgot := Canonicalize(jev)
		gb, _ := json.Marshal(got)
		jg, _ := json.Marshal(jgot)
		if !bytes.Equal(gb, jg) {
			t.Fatalf("seed %d: binary and JSONL decodings diverge after normalization", tc.seed)
		}
	}
}

// TestBinarySkipsSilentSlots pins the writer to the JSONL recorder's silent
// slot policy.
func TestBinarySkipsSilentSlots(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinary(&buf)
	w.Record(sim.SlotEvent{Tick: 1})
	w.Record(sim.SlotEvent{Tick: 2, Transmitters: []int{1}})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != 1 {
		t.Fatalf("silent slot recorded: %d events", w.Events())
	}
	var buf2 bytes.Buffer
	w2 := NewBinary(&buf2)
	w2.KeepSilent = true
	w2.Record(sim.SlotEvent{Tick: 1})
	if w2.Events() != 1 {
		t.Fatal("KeepSilent ignored")
	}
}

// TestSchemaMismatch: a trace whose header carries a different schema hash
// must fail with the typed error, not decode garbage.
func TestSchemaMismatch(t *testing.T) {
	data := encodeBinary(t, randomEvents(7, 10), 0)
	bad := append([]byte(nil), data...)
	bad[4] ^= 0xff // inside the schema hash
	_, err := NewReader(bytes.NewReader(bad))
	var sm *SchemaMismatchError
	if !errors.As(err, &sm) {
		t.Fatalf("got %v, want *SchemaMismatchError", err)
	}
	if sm.Want != SchemaHash() || sm.Got == sm.Want {
		t.Fatalf("mismatch error carries wrong hashes: %+v", sm)
	}
	// The header hash is the digest of the event type's structural schema;
	// pin that the schema string actually names every SlotEvent field, so
	// adding or renaming one cannot keep the hash stable.
	schema := EventSchema()
	typ := reflect.TypeOf(sim.SlotEvent{})
	for i := 0; i < typ.NumField(); i++ {
		if !bytes.Contains([]byte(schema), []byte(typ.Field(i).Name)) {
			t.Fatalf("schema string misses field %s: %s", typ.Field(i).Name, schema)
		}
	}
}

// TestNotBinaryMagic: a JSONL stream handed to the binary reader fails with
// ErrNotBinary (Open sniffs and routes correctly instead).
func TestNotBinaryMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte(`{"tick":1,"tx":[1]}` + "\n"))); !errors.Is(err, ErrNotBinary) {
		t.Fatalf("got %v, want ErrNotBinary", err)
	}
}

// TestTornTraceRecovery truncates a multi-frame binary trace at every byte
// offset: the reader must never panic and must recover exactly the events
// of the frames that fit the prefix whole.
func TestTornTraceRecovery(t *testing.T) {
	events := randomEvents(11, 90)
	var buf bytes.Buffer
	w := NewBinary(&buf)
	type boundary struct{ bytes, events int }
	bounds := []boundary{} // clean prefix points (frame ends)
	for i, ev := range events {
		w.Record(ev)
		if (i+1)%30 == 0 {
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			bounds = append(bounds, boundary{buf.Len(), i + 1})
		}
	}
	data := buf.Bytes()
	if len(bounds) < 3 {
		t.Fatalf("want >=3 frames, got %d", len(bounds))
	}
	want := Canonicalize(append([]sim.SlotEvent(nil), events...))

	for off := 0; off <= len(data); off++ {
		prefix := data[:off]
		r, err := NewReader(bytes.NewReader(prefix))
		if err != nil {
			if off >= headerSize {
				t.Fatalf("offset %d: header rejected: %v", off, err)
			}
			continue // torn inside the header: zero events is the valid prefix
		}
		var got []sim.SlotEvent
		for {
			ev, nerr := r.Next()
			if nerr == io.EOF {
				break
			}
			if nerr != nil {
				t.Fatalf("offset %d: %v", off, nerr)
			}
			got = append(got, ev)
		}
		expect := 0
		clean := off == len(data) || off == headerSize
		for _, b := range bounds {
			if b.bytes <= off {
				expect = b.events
				if b.bytes == off {
					clean = true
				}
			}
		}
		if len(got) != expect {
			t.Fatalf("offset %d: recovered %d events, want %d", off, len(got), expect)
		}
		if expect > 0 && !reflect.DeepEqual(Canonicalize(got), want[:expect]) {
			t.Fatalf("offset %d: recovered prefix diverges from original events", off)
		}
		if r.Truncated() == clean {
			t.Fatalf("offset %d: Truncated=%v, want %v", off, r.Truncated(), !clean)
		}
	}
}

// TestBinaryCorruptFrame flips every byte of a small trace in turn: the
// reader must never panic, never fabricate events past the corruption, and
// the decoded prefix must always be a prefix of the original sequence.
func TestBinaryCorruptFrame(t *testing.T) {
	events := randomEvents(13, 40)
	data := encodeBinary(t, events, 10)
	want := Canonicalize(append([]sim.SlotEvent(nil), events...))
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x5a
		r, err := NewReader(bytes.NewReader(mut))
		if err != nil {
			continue // header corruption: rejected eagerly
		}
		var got []sim.SlotEvent
		for {
			ev, nerr := r.Next()
			if nerr == io.EOF {
				break
			}
			if nerr != nil {
				t.Fatalf("flip %d: %v", i, nerr)
			}
			got = append(got, ev)
		}
		got = Canonicalize(got)
		// A flip inside an id list can only be detected by the CRC, so any
		// surviving decode must come from an untouched frame: compare
		// per-frame prefixes (frames hold 10 events each here).
		if len(got) > len(want) {
			t.Fatalf("flip %d: decoded %d events from %d originals", i, len(got), len(want))
		}
		if len(got)%10 != 0 && len(got) != len(want) {
			t.Fatalf("flip %d: partial frame of %d events surfaced", i, len(got))
		}
		if len(got) > 0 && !reflect.DeepEqual(got, want[:len(got)]) {
			t.Fatalf("flip %d: decoded events are not a prefix of the originals", i)
		}
	}
}

// TestBinaryStickyWriteError: a failing underlying writer surfaces through
// Flush and stops further writes, as with the JSONL recorder.
func TestBinaryStickyWriteError(t *testing.T) {
	w := NewBinary(failWriter{})
	for i := 0; i < 3; i++ {
		w.Record(sim.SlotEvent{Tick: i, Transmitters: []int{i}})
	}
	if err := w.Flush(); err == nil {
		t.Fatal("expected flush error")
	}
	if err := w.Flush(); err == nil {
		t.Fatal("error not sticky")
	}
}

// TestOpenAutoDetect routes binary and JSONL streams to the right reader.
func TestOpenAutoDetect(t *testing.T) {
	events := randomEvents(17, 25)
	bin := encodeBinary(t, events, 0)
	got, format, err := ReadEvents(bytes.NewReader(bin))
	if err != nil || format != FormatBinary {
		t.Fatalf("binary detect: format=%v err=%v", format, err)
	}
	if len(got) != len(events) {
		t.Fatalf("binary decode: %d of %d events", len(got), len(events))
	}

	var jb bytes.Buffer
	jw := NewJSONL(&jb)
	for _, ev := range events {
		jw.Record(ev)
	}
	if err := jw.Flush(); err != nil {
		t.Fatal(err)
	}
	jgot, format, err := ReadEvents(&jb)
	if err != nil || format != FormatJSONL {
		t.Fatalf("jsonl detect: format=%v err=%v", format, err)
	}
	a, _ := json.Marshal(Canonicalize(got))
	b, _ := json.Marshal(Canonicalize(jgot))
	if !bytes.Equal(a, b) {
		t.Fatal("auto-detected decodings diverge")
	}
}

// TestBinaryEmptyTraceHeader: an empty flushed trace is a valid 12-byte
// header that decodes to zero events, cleanly.
func TestBinaryEmptyTraceHeader(t *testing.T) {
	data := encodeBinary(t, nil, 0)
	if len(data) != headerSize {
		t.Fatalf("empty trace is %d bytes, want %d", len(data), headerSize)
	}
	if got := decodeBinary(t, data); len(got) != 0 {
		t.Fatalf("empty trace decoded %d events", len(got))
	}
	if got := binary.LittleEndian.Uint64(data[4:]); got != SchemaHash() {
		t.Fatalf("header hash %x, want %x", got, SchemaHash())
	}
}
