package checkpoint

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestCompactDropsAndSurvivesResume(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	keep := testRecord("table1", "row=0 seed=0", 1, []byte{1})
	drop := testRecord("old", "row=9 seed=9", 1, []byte{2})
	mustPut(t, s, keep)
	mustPut(t, s, drop)

	st, err := s.Compact(func(r *Record) bool { return r.Experiment != "old" })
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 1 || st.Dropped != 1 {
		t.Fatalf("compact stats kept=%d dropped=%d, want 1/1", st.Kept, st.Dropped)
	}
	if st.BytesAfter >= st.BytesBefore {
		t.Fatalf("compact did not shrink journal: %d -> %d", st.BytesBefore, st.BytesAfter)
	}
	if _, ok := s.Lookup(drop.Key()); ok {
		t.Fatal("dropped record still in index")
	}
	if _, ok := s.Lookup(keep.Key()); !ok {
		t.Fatal("kept record gone from index")
	}
	stats := s.Stats()
	if stats.Compactions != 1 || stats.CompactDropped != 1 {
		t.Fatalf("stats compactions=%d dropped=%d, want 1/1", stats.Compactions, stats.CompactDropped)
	}

	// Appends after a compaction must land in the rewritten journal.
	after := testRecord("table1", "row=1 seed=0", 1, []byte{3})
	mustPut(t, s, after)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Resume(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 2 {
		t.Fatalf("resumed store has %d records, want 2", r.Len())
	}
	for _, want := range []Record{keep, after} {
		if _, ok := r.Lookup(want.Key()); !ok {
			t.Fatalf("record %s/%s missing after compaction+resume", want.Experiment, want.Label)
		}
	}
	if _, ok := r.Lookup(drop.Key()); ok {
		t.Fatal("dropped record resurrected by resume")
	}
}

func TestCompactKeepAllSqueezesDuplicateFrames(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord("table1", "row=0 seed=0", 1, []byte{1, 2, 3})
	for i := 0; i < 5; i++ {
		mustPut(t, s, rec) // same key: 5 frames, 1 live record
	}
	st, err := s.Compact(nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 1 || st.Dropped != 0 {
		t.Fatalf("compact stats kept=%d dropped=%d, want 1/0", st.Kept, st.Dropped)
	}
	if st.BytesAfter >= st.BytesBefore {
		t.Fatalf("keep-all compact did not squeeze duplicates: %d -> %d", st.BytesBefore, st.BytesAfter)
	}
	s.Close()
}

// TestRewriteCrashStages snapshots the journal file at each RewriteStage and
// verifies a resume from that snapshot sees either the complete old contents
// or the complete new contents — the old-or-new atomicity Rewrite promises.
// (The re-exec SIGKILL variant lives in internal/jobs; this covers the same
// states without process churn.)
func TestRewriteCrashStages(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := testRecord("old", "row=0 seed=0", 1, []byte{1})
	kept := testRecord("table1", "row=0 seed=0", 1, []byte{2})
	mustPut(t, s, old)
	mustPut(t, s, kept)

	snaps := map[RewriteStage][]byte{}
	RewriteTestHook = func(stage RewriteStage, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("stage %s: read journal: %v", stage, err)
			return
		}
		snaps[stage] = data
	}
	defer func() { RewriteTestHook = nil }()

	if _, err := s.Compact(func(r *Record) bool { return r.Experiment != "old" }); err != nil {
		t.Fatal(err)
	}
	s.Close()

	for stage, data := range snaps {
		crash := t.TempDir()
		if err := os.WriteFile(filepath.Join(crash, journalName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		// A crash at temp-written also leaves the staged temp behind;
		// reopening must discard it.
		if stage == StageTempWritten {
			if err := os.WriteFile(rewritePath(filepath.Join(crash, journalName)), []byte("stale"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		r, err := Resume(crash)
		if err != nil {
			t.Fatalf("stage %s: resume: %v", stage, err)
		}
		if r.Stats().TornBytes != 0 {
			t.Errorf("stage %s: resume found torn bytes in a rewrite state", stage)
		}
		_, hasOld := r.Lookup(old.Key())
		_, hasKept := r.Lookup(kept.Key())
		switch stage {
		case StageTempWritten: // old journal still authoritative
			if !hasOld || !hasKept {
				t.Errorf("stage %s: want complete old contents, got old=%v kept=%v", stage, hasOld, hasKept)
			}
		case StageRenamed: // new journal fully in place
			if hasOld || !hasKept {
				t.Errorf("stage %s: want complete new contents, got old=%v kept=%v", stage, hasOld, hasKept)
			}
		}
		r.Close()
		if _, err := os.Stat(rewritePath(filepath.Join(crash, journalName))); !os.IsNotExist(err) {
			t.Errorf("stage %s: stale rewrite temp not removed on resume", stage)
		}
	}
	if len(snaps) != 2 {
		t.Fatalf("hook saw %d stages, want 2", len(snaps))
	}
}

func TestConcurrentPutsDuringCompactAllSurvive(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := testRecord("table1", labelFor(w, i), 1, []byte{byte(w), byte(i)})
				mustPutConcurrent(t, s, rec)
				if i%5 == 0 {
					if _, err := s.Compact(nil); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Resume(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != writers*perWriter {
		t.Fatalf("resumed store has %d records, want %d — a compaction dropped a concurrent Put", r.Len(), writers*perWriter)
	}
}

func mustPutConcurrent(t *testing.T, s *Store, rec Record) {
	if err := s.Put(rec); err != nil {
		t.Error(err)
	}
}
