package checkpoint

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Journal is a generic append-only journal of framed byte payloads — the
// torn-write-safe container underneath the cell-result store, exported so
// other crash-safe state (the jobs daemon's job journal, see internal/jobs)
// shares one tested atomicity discipline instead of reinventing it.
//
// Each payload is framed as
//
//	magic "UCP1" | uint32 payload length | uint32 CRC-32C | payload
//
// and appended with a single Write under the journal mutex, so concurrent
// appenders interleave whole frames and a crash — even SIGKILL — tears at
// most the final frame. ResumeJournal scans front to back and truncates at
// the first frame that fails validation: a torn or corrupt tail costs only
// the frames it covered, never the ones before it. There is no in-place
// mutation anywhere.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string

	resumed bool
	torn    int64
}

// CreateJournal opens a fresh journal at path, discarding any existing one.
func CreateJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: create journal: %w", err)
	}
	return &Journal{f: f, path: path}, nil
}

// ResumeJournal opens the journal at path (creating an empty one when
// missing) and recovers its longest valid prefix: every frame that parses —
// intact magic, in-bounds length, matching checksum — is passed to accept
// in append order. A frame that fails to parse, or that accept rejects,
// ends the prefix; everything from it on is truncated away, so a second
// resume sees a clean journal. A nil accept accepts every parsed frame.
//
// The payload slice passed to accept is only valid during the call.
func ResumeJournal(path string, accept func(payload []byte) bool) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: read journal: %w", err)
	}
	valid := int64(0)
	for {
		payload, n, ok := decodePayloadFrame(data[valid:])
		if !ok || (accept != nil && !accept(payload)) {
			break
		}
		valid += n
	}
	j := &Journal{f: f, path: path, resumed: true}
	if end := int64(len(data)); valid < end {
		j.torn = end - valid
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: seek journal: %w", err)
	}
	return j, nil
}

// Append commits one payload as a self-contained frame with a single Write.
func (j *Journal) Append(payload []byte) error {
	frame, err := encodePayloadFrame(payload)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("checkpoint: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("checkpoint: append frame: %w", err)
	}
	return nil
}

// Sync flushes appended frames to stable storage (fsync). Drain paths call
// it before reporting a clean shutdown.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync journal: %w", err)
	}
	return nil
}

// Resumed reports whether the journal was opened by ResumeJournal.
func (j *Journal) Resumed() bool { return j.resumed }

// TornBytes returns the length of the invalid tail recovery dropped (0 for
// a journal that was clean or freshly created).
func (j *Journal) TornBytes() int64 { return j.torn }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the file handle; further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return fmt.Errorf("checkpoint: close journal: %w", err)
	}
	return nil
}

// encodePayloadFrame renders one payload as a self-contained journal frame.
func encodePayloadFrame(payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("checkpoint: empty journal payload")
	}
	if len(payload) > maxPayload {
		return nil, fmt.Errorf("checkpoint: journal payload %d bytes exceeds limit", len(payload))
	}
	frame := make([]byte, 0, 12+len(payload))
	frame = append(frame, magic[:]...)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, crcTable))
	frame = append(frame, payload...)
	return frame, nil
}

// decodePayloadFrame parses one frame from the front of data. ok=false
// means data does not start with a complete valid frame (torn tail,
// corruption, or simply empty). The returned payload aliases data.
func decodePayloadFrame(data []byte) (payload []byte, n int64, ok bool) {
	const header = 4 + 4 + 4 // magic + length + crc
	if len(data) < header {
		return nil, 0, false
	}
	if !bytes.Equal(data[:4], magic[:]) {
		return nil, 0, false
	}
	plen := binary.LittleEndian.Uint32(data[4:8])
	if plen == 0 || plen > maxPayload || int64(plen) > int64(len(data)-header) {
		return nil, 0, false
	}
	payload = data[header : header+int(plen)]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[8:12]) {
		return nil, 0, false
	}
	return payload, int64(header) + int64(plen), true
}
