package checkpoint

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Journal is a generic append-only journal of framed byte payloads — the
// torn-write-safe container underneath the cell-result store, exported so
// other crash-safe state (the jobs daemon's job journal, see internal/jobs)
// shares one tested atomicity discipline instead of reinventing it.
//
// Each payload is framed as
//
//	magic "UCP1" | uint32 payload length | uint32 CRC-32C | payload
//
// and appended with a single Write under the journal mutex, so concurrent
// appenders interleave whole frames and a crash — even SIGKILL — tears at
// most the final frame. ResumeJournal scans front to back and truncates at
// the first frame that fails validation: a torn or corrupt tail costs only
// the frames it covered, never the ones before it. There is no in-place
// mutation anywhere.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string

	resumed bool
	torn    int64
}

// CreateJournal opens a fresh journal at path, discarding any existing one.
func CreateJournal(path string) (*Journal, error) {
	removeStaleRewrite(path)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: create journal: %w", err)
	}
	return &Journal{f: f, path: path}, nil
}

// removeStaleRewrite deletes a temp file a Rewrite left behind when the
// process died before the atomic rename — the old journal is still the
// authoritative one, so the temp is garbage, and leaving it would let
// crashed compactions accumulate unbounded state.
func removeStaleRewrite(path string) { os.Remove(rewritePath(path)) }

// rewritePath is where Rewrite stages the replacement journal.
func rewritePath(path string) string { return path + ".rewrite" }

// ResumeJournal opens the journal at path (creating an empty one when
// missing) and recovers its longest valid prefix: every frame that parses —
// intact magic, in-bounds length, matching checksum — is passed to accept
// in append order. A frame that fails to parse, or that accept rejects,
// ends the prefix; everything from it on is truncated away, so a second
// resume sees a clean journal. A nil accept accepts every parsed frame.
//
// The payload slice passed to accept is only valid during the call.
func ResumeJournal(path string, accept func(payload []byte) bool) (*Journal, error) {
	removeStaleRewrite(path)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: read journal: %w", err)
	}
	valid := int64(0)
	for {
		payload, n, ok := decodePayloadFrame(data[valid:])
		if !ok || (accept != nil && !accept(payload)) {
			break
		}
		valid += n
	}
	j := &Journal{f: f, path: path, resumed: true}
	if end := int64(len(data)); valid < end {
		j.torn = end - valid
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("checkpoint: truncate torn tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: seek journal: %w", err)
	}
	return j, nil
}

// Append commits one payload as a self-contained frame with a single Write.
func (j *Journal) Append(payload []byte) error {
	frame, err := encodePayloadFrame(payload)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("checkpoint: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("checkpoint: append frame: %w", err)
	}
	return nil
}

// Sync flushes appended frames to stable storage (fsync). Drain paths call
// it before reporting a clean shutdown.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync journal: %w", err)
	}
	return nil
}

// RewriteStage names a point inside Journal.Rewrite at which the journal's
// on-disk state is well defined; RewriteTestHook fires at each one so
// crash-safety tests can kill the process between them.
type RewriteStage string

const (
	// StageTempWritten: the replacement journal is fully written and fsynced
	// at the temp path; the original journal is untouched. A crash here
	// leaves the old journal authoritative (the temp is removed on the next
	// open).
	StageTempWritten RewriteStage = "temp-written"
	// StageRenamed: the replacement has atomically replaced the original.
	// A crash here (before the directory fsync) leaves either the old or the
	// new journal fully valid, depending on whether the rename's directory
	// entry reached disk — never a mixture.
	StageRenamed RewriteStage = "renamed"
)

// RewriteTestHook, when non-nil, is called by Rewrite at each RewriteStage
// with the journal path. Crash-safety tests install a hook that SIGKILLs the
// process at a chosen stage; production code must leave it nil.
var RewriteTestHook func(stage RewriteStage, path string)

// Rewrite atomically replaces the journal's entire contents with the given
// payloads (each becoming one frame, in order). The replacement is staged in
// a temp file, fsynced, and renamed over the journal, so a crash — even
// SIGKILL — at any byte leaves either the old or the new journal fully
// valid, never a torn mixture: the same discipline ResumeJournal already
// guarantees per frame, extended to whole-file compaction. Appends issued
// concurrently serialize against the rewrite and land in the new journal.
func (j *Journal) Rewrite(payloads [][]byte) error {
	var buf bytes.Buffer
	for _, p := range payloads {
		frame, err := encodePayloadFrame(p)
		if err != nil {
			return err
		}
		buf.Write(frame)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("checkpoint: journal %s is closed", j.path)
	}
	tmp := rewritePath(j.path)
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: stage rewrite: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: write rewrite: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: sync rewrite: %w", err)
	}
	if RewriteTestHook != nil {
		RewriteTestHook(StageTempWritten, j.path)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: swap rewrite: %w", err)
	}
	if RewriteTestHook != nil {
		RewriteTestHook(StageRenamed, j.path)
	}
	// Persist the rename itself; best-effort (some filesystems refuse
	// directory fsync), and rename atomicity already guarantees
	// old-or-new either way.
	if d, derr := os.Open(filepath.Dir(j.path)); derr == nil {
		d.Sync()
		d.Close()
	}
	// f now refers to the inode living at j.path, positioned at its end —
	// exactly where subsequent Appends must land. The old handle points at
	// the unlinked previous journal.
	j.f.Close()
	j.f = f
	j.torn = 0
	return nil
}

// Size reports the journal's current on-disk length in bytes.
func (j *Journal) Size() (int64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return 0, fmt.Errorf("checkpoint: journal %s is closed", j.path)
	}
	fi, err := j.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("checkpoint: stat journal: %w", err)
	}
	return fi.Size(), nil
}

// Resumed reports whether the journal was opened by ResumeJournal.
func (j *Journal) Resumed() bool { return j.resumed }

// TornBytes returns the length of the invalid tail recovery dropped (0 for
// a journal that was clean or freshly created).
func (j *Journal) TornBytes() int64 { return j.torn }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the file handle; further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return fmt.Errorf("checkpoint: close journal: %w", err)
	}
	return nil
}

// encodePayloadFrame renders one payload as a self-contained journal frame.
func encodePayloadFrame(payload []byte) ([]byte, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("checkpoint: empty journal payload")
	}
	if len(payload) > maxPayload {
		return nil, fmt.Errorf("checkpoint: journal payload %d bytes exceeds limit", len(payload))
	}
	frame := make([]byte, 0, 12+len(payload))
	frame = append(frame, magic[:]...)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, crcTable))
	frame = append(frame, payload...)
	return frame, nil
}

// decodePayloadFrame parses one frame from the front of data. ok=false
// means data does not start with a complete valid frame (torn tail,
// corruption, or simply empty). The returned payload aliases data.
func decodePayloadFrame(data []byte) (payload []byte, n int64, ok bool) {
	const header = 4 + 4 + 4 // magic + length + crc
	if len(data) < header {
		return nil, 0, false
	}
	if !bytes.Equal(data[:4], magic[:]) {
		return nil, 0, false
	}
	plen := binary.LittleEndian.Uint32(data[4:8])
	if plen == 0 || plen > maxPayload || int64(plen) > int64(len(data)-header) {
		return nil, 0, false
	}
	payload = data[header : header+int(plen)]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[8:12]) {
		return nil, 0, false
	}
	return payload, int64(header) + int64(plen), true
}
