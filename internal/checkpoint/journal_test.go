package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJournalRoundTrip pins the exported Journal container end to end:
// create, append, resume with an accept callback, and the clean-journal
// bookkeeping (Resumed, TornBytes, Path).
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Resumed() {
		t.Fatal("fresh journal reports Resumed")
	}
	if j.Path() != path {
		t.Fatalf("Path = %q, want %q", j.Path(), path)
	}
	want := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	for _, p := range want {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := j.Sync(); err != nil { // no-op after close
		t.Fatal(err)
	}
	if err := j.Append([]byte("late")); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("append after close: %v, want closed error", err)
	}

	var got [][]byte
	j2, err := ResumeJournal(path, func(p []byte) bool {
		got = append(got, append([]byte(nil), p...))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if !j2.Resumed() {
		t.Fatal("resumed journal does not report Resumed")
	}
	if j2.TornBytes() != 0 {
		t.Fatalf("clean journal reports %d torn bytes", j2.TornBytes())
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d payloads, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("payload %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestJournalResumeTruncatesTornTail appends garbage after valid frames and
// requires resume to drop exactly the garbage, keep the prefix, and leave
// the file clean for a second resume.
func TestJournalResumeTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := []byte("UCP1 imposter header then trash")
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var got [][]byte
	j2, err := ResumeJournal(path, func(p []byte) bool {
		got = append(got, append([]byte(nil), p...))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if j2.TornBytes() != int64(len(torn)) {
		t.Fatalf("TornBytes = %d, want %d", j2.TornBytes(), len(torn))
	}
	if len(got) != 1 || string(got[0]) != "kept" {
		t.Fatalf("replayed %q, want only \"kept\"", got)
	}
	// The tail is gone from disk: appending then resuming again sees both
	// frames and no torn bytes.
	if err := j2.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	count := 0
	j3, err := ResumeJournal(path, func([]byte) bool { count++; return true })
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if count != 2 || j3.TornBytes() != 0 {
		t.Fatalf("second resume: %d frames, %d torn bytes; want 2 frames, clean", count, j3.TornBytes())
	}
}

// TestJournalAcceptRejectionEndsPrefix pins that a frame the accept
// callback rejects ends the valid prefix exactly like a torn frame, even
// when intact frames follow it.
func TestJournalAcceptRejectionEndsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"good", "bad", "unreachable"} {
		if err := j.Append([]byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	var got []string
	j2, err := ResumeJournal(path, func(p []byte) bool {
		if string(p) == "bad" {
			return false
		}
		got = append(got, string(p))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(got) != 1 || got[0] != "good" {
		t.Fatalf("accepted %q, want only \"good\"", got)
	}
	if j2.TornBytes() == 0 {
		t.Fatal("rejected frame not counted as dropped tail")
	}
}

// TestJournalResumeMissingFile pins that resuming a path that does not
// exist yields an empty working journal rather than an error.
func TestJournalResumeMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent")
	j, err := ResumeJournal(path, func([]byte) bool {
		t.Fatal("accept called on an empty journal")
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.TornBytes() != 0 {
		t.Fatalf("empty journal reports %d torn bytes", j.TornBytes())
	}
	if err := j.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
}

// TestJournalAppendRejectsBadPayloads pins the frame-level payload bounds.
func TestJournalAppendRejectsBadPayloads(t *testing.T) {
	j, err := CreateJournal(filepath.Join(t.TempDir(), "j"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if err := j.Append(make([]byte, maxPayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

// TestJournalCreateErrors covers the unopenable-path failure mode.
func TestJournalCreateErrors(t *testing.T) {
	if _, err := CreateJournal(filepath.Join(t.TempDir(), "no", "such", "dir", "j")); err == nil {
		t.Fatal("CreateJournal in a missing directory succeeded")
	}
	if _, err := ResumeJournal(filepath.Join(t.TempDir(), "no", "such", "dir", "j"), nil); err == nil {
		t.Fatal("ResumeJournal in a missing directory succeeded")
	}
}

// TestStoreSyncFlushes covers Store.Sync on live and closed stores.
func TestStoreSyncFlushes(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Record{Experiment: "e", Label: "l", Schema: "s", Attempts: 1, Value: []byte{42}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil { // no-op after close
		t.Fatal(err)
	}
}
