package checkpoint

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func testRecord(exp, label string, attempts int, value []byte) Record {
	return Record{
		Experiment: exp,
		Label:      label,
		Schema:     "v1|test",
		Attempts:   attempts,
		Value:      value,
		Metrics:    []byte(`{"counters":[{"name":"sim/tx","value":3}]}`),
	}
}

func mustPut(t *testing.T, s *Store, rec Record) {
	t.Helper()
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		testRecord("table1", "row=0 seed=0", 1, []byte{1, 2, 3}),
		testRecord("table1", "row=0 seed=1", 2, []byte{4, 5}),
		testRecord("figure3", "row=1 seed=0", 1, []byte{6}),
	}
	for _, r := range recs {
		mustPut(t, s, r)
	}
	hash := s.Hash()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Resume(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != len(recs) {
		t.Fatalf("resumed store has %d records, want %d", r.Len(), len(recs))
	}
	for _, want := range recs {
		got, ok := r.Lookup(want.Key())
		if !ok {
			t.Fatalf("record %s/%s missing after resume", want.Experiment, want.Label)
		}
		if !reflect.DeepEqual(*got, want) {
			t.Fatalf("record drifted through the journal:\ngot  %+v\nwant %+v", *got, want)
		}
	}
	if r.Hash() != hash {
		t.Fatalf("store hash changed across resume: %s != %s", r.Hash(), hash)
	}
	st := r.Stats()
	if !st.Resumed || st.TornBytes != 0 || st.Records != len(recs) || st.Hits != int64(len(recs)) {
		t.Fatalf("unexpected resume stats: %+v", st)
	}
}

func TestCreateDiscardsExistingJournal(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, testRecord("table1", "row=0 seed=0", 1, []byte{1}))
	s.Close()

	fresh, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if fresh.Len() != 0 {
		t.Fatalf("Create kept %d records from the old journal", fresh.Len())
	}
}

func TestResumeMissingJournal(t *testing.T) {
	s, err := Resume(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 0 {
		t.Fatalf("empty dir resumed with %d records", s.Len())
	}
	mustPut(t, s, testRecord("table1", "row=0 seed=0", 1, []byte{1}))
}

// TestTornWriteRecovery is the atomicity contract: truncating the journal
// at *every* byte offset inside the final record must recover exactly the
// records before it — the torn tail is dropped, nothing else is lost, and
// the recovered store accepts new appends.
func TestTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	kept := []Record{
		testRecord("table1", "row=0 seed=0", 1, []byte{1, 2, 3}),
		testRecord("table1", "row=0 seed=1", 1, []byte{4, 5, 6}),
	}
	for _, r := range kept {
		mustPut(t, s, r)
	}
	path := filepath.Join(dir, journalName)
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	victim := testRecord("table1", "row=1 seed=0", 1, []byte{7, 8, 9})
	mustPut(t, s, victim)
	s.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) <= len(clean) {
		t.Fatal("third record added no journal bytes")
	}

	for cut := len(clean); cut < len(full); cut++ {
		tdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(tdir, journalName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Resume(tdir)
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		if r.Len() != len(kept) {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, r.Len(), len(kept))
		}
		for _, want := range kept {
			if _, ok := r.Lookup(want.Key()); !ok {
				t.Fatalf("cut=%d: intact record %s lost", cut, want.Label)
			}
		}
		if _, ok := r.Lookup(victim.Key()); ok {
			t.Fatalf("cut=%d: torn record survived recovery", cut)
		}
		st := r.Stats()
		if want := int64(cut - len(clean)); st.TornBytes != want {
			t.Fatalf("cut=%d: TornBytes=%d, want %d", cut, st.TornBytes, want)
		}
		// The truncated store must be append-able and re-resumable.
		mustPut(t, r, victim)
		r.Close()
		again, err := Resume(tdir)
		if err != nil {
			t.Fatalf("cut=%d: re-resume failed: %v", cut, err)
		}
		if again.Len() != len(kept)+1 {
			t.Fatalf("cut=%d: re-appended store has %d records", cut, again.Len())
		}
		again.Close()
	}
}

// TestCorruptMiddleDropsTail pins the recovery discipline for corruption
// that is not at the end: the journal is append-only, so nothing after the
// first invalid frame can be trusted, and recovery keeps only the prefix.
func TestCorruptMiddleDropsTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	first := testRecord("table1", "row=0 seed=0", 1, []byte{1})
	mustPut(t, s, first)
	path := filepath.Join(dir, journalName)
	prefix, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	second := testRecord("table1", "row=0 seed=1", 1, []byte{2})
	mustPut(t, s, second)
	s.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(prefix)+13] ^= 0xff // flip a payload byte of the second frame
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Resume(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 1 {
		t.Fatalf("recovered %d records, want 1", r.Len())
	}
	if _, ok := r.Lookup(first.Key()); !ok {
		t.Fatal("record before the corruption lost")
	}
	if st := r.Stats(); st.TornBytes != int64(len(data)-len(prefix)) {
		t.Fatalf("TornBytes=%d, want %d", st.TornBytes, len(data)-len(prefix))
	}
}

func TestConcurrentPuts(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec := testRecord("table1", labelFor(w, i), 1, []byte{byte(w), byte(i)})
				if err := s.Put(rec); err != nil {
					t.Error(err)
					return
				}
				if _, ok := s.Lookup(rec.Key()); !ok {
					t.Errorf("writer %d: record %d invisible after Put", w, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != writers*per {
		t.Fatalf("store has %d records, want %d", s.Len(), writers*per)
	}
	hash := s.Hash()
	s.Close()
	r, err := Resume(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != writers*per || r.Hash() != hash {
		t.Fatalf("concurrent journal did not round-trip: %d records, hash match=%t",
			r.Len(), r.Hash() == hash)
	}
}

func labelFor(w, i int) string { return "row=" + string(rune('a'+w)) + " seed=" + string(rune('a'+i)) }

func TestKeyOfSeparatesFields(t *testing.T) {
	// Length prefixing must keep ("ab","c") and ("a","bc") apart.
	if KeyOf("ab", "c", "s") == KeyOf("a", "bc", "s") {
		t.Fatal("field boundaries not separated in key derivation")
	}
	if KeyOf("e", "l", "s1") == KeyOf("e", "l", "s2") {
		t.Fatal("schema not part of the key")
	}
	if KeyOf("e", "l", "s") != KeyOf("e", "l", "s") {
		t.Fatal("key derivation is not deterministic")
	}
}

func TestSchemaOf(t *testing.T) {
	type inner struct{ A float64 }
	type outer struct {
		X, Y   float64
		S      []inner
		hidden int //nolint:unused — exercises the exported-only rule
	}
	got := SchemaOf(reflect.TypeOf(outer{}))
	want := "struct{X float64;Y float64;S []struct{A float64}}"
	if got != want {
		t.Fatalf("SchemaOf = %q, want %q", got, want)
	}
	if SchemaOf(reflect.TypeOf([]float64{})) != "[]float64" {
		t.Fatalf("slice schema wrong: %q", SchemaOf(reflect.TypeOf([]float64{})))
	}
}

func TestValueCodecRoundTrip(t *testing.T) {
	type cell struct {
		LB, Dec float64
		Ticks   []float64
		Done    bool
	}
	in := cell{LB: 3.25, Dec: -1, Ticks: []float64{1, 2.5}, Done: true}
	b, err := EncodeValue(in)
	if err != nil {
		t.Fatal(err)
	}
	var out cell
	if err := DecodeValue(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip drifted: %+v != %+v", out, in)
	}
	// Determinism: the same value must encode to the same bytes (the store
	// hash depends on it).
	b2, err := EncodeValue(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Fatal("gob encoding of identical values differs")
	}
	if err := DecodeValue([]byte{0xff, 0x01, 0x02}, &out); err == nil {
		t.Fatal("garbage decoded without error")
	}
}

func TestPutAfterCloseFails(t *testing.T) {
	s, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Put(testRecord("t", "l", 1, nil)); err == nil {
		t.Fatal("Put after Close must fail")
	}
	if st := s.Stats(); st.Errors != 1 {
		t.Fatalf("Errors=%d, want 1", st.Errors)
	}
}

func TestStoreAccessors(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", s.Dir(), dir)
	}
	s.NoteError()
	if got := s.Stats().Errors; got != 1 {
		t.Fatalf("Errors = %d after NoteError, want 1", got)
	}
	k := KeyOf("e", "l", "s")
	if len(k.String()) != 64 {
		t.Fatalf("Key.String() = %q, want 64 hex digits", k.String())
	}
}

// Opening a store whose directory path is occupied by a regular file must
// fail cleanly instead of panicking.
func TestOpenDirIsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(path); err == nil {
		t.Fatal("Create over a regular file must fail")
	}
	if _, err := Resume(path); err == nil {
		t.Fatal("Resume over a regular file must fail")
	}
}

// A record whose payload exceeds the frame limit must be rejected by Put
// (and counted), never half-written.
func TestPutOversizedPayload(t *testing.T) {
	s, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := testRecord("e", "big", 1, make([]byte, maxPayload+1))
	if err := s.Put(rec); err == nil {
		t.Fatal("oversized record must be rejected")
	}
	if s.Stats().Errors != 1 || s.Len() != 0 {
		t.Fatalf("oversized Put: errors=%d len=%d", s.Stats().Errors, s.Len())
	}
}

func TestSchemaOfKinds(t *testing.T) {
	type inner struct{ A float64 }
	type outer struct {
		M      map[string]int
		P      *inner
		Ar     [3]int8
		hidden int //nolint:unused — exercises the unexported-field skip
	}
	got := SchemaOf(reflect.TypeOf(outer{}))
	want := "struct{M map[string]int;P *struct{A float64};Ar [3]int8}"
	if got != want {
		t.Fatalf("SchemaOf = %q, want %q", got, want)
	}
	if s := SchemaOf(reflect.TypeOf(3.14)); s != "float64" {
		t.Fatalf("SchemaOf(float64) = %q", s)
	}
	// Self-referential type: the depth cap must terminate the recursion.
	type node struct{ Next *node }
	if s := SchemaOf(reflect.TypeOf(node{})); !strings.Contains(s, "...") {
		t.Fatalf("recursive SchemaOf did not hit the depth cap: %q", s)
	}
}

// Channels are not gob-encodable: EncodeValue must surface the error.
func TestEncodeValueError(t *testing.T) {
	ch := make(chan int)
	if _, err := EncodeValue(&ch); err == nil {
		t.Fatal("encoding a channel must fail")
	}
}
