// Package checkpoint is a content-addressed, append-only store for
// experiment grid cell results, built so that the full-scale reproduction
// sweeps (hours of deterministic work) survive interruption: a resumed run
// replays completed cells from the store and is byte-identical to an
// uninterrupted one.
//
// Addressing. Every record is keyed by a SHA-256 over the experiment id,
// the cell's grid label (which carries its row/seed coordinates) and a
// schema version string capturing everything else that determines the
// cell's value and instrumentation (result type shape, Quick scaling,
// whether metrics are attached — see internal/experiment). Because every
// grid cell is a pure function of those coordinates, a key either misses or
// hits a value that is bit-for-bit what re-running the cell would produce.
//
// Atomicity discipline. The store is a single append-only Journal
// (cells.journal; see journal.go for the generic framed container, which
// the jobs daemon reuses for its job journal). Each record is one frame —
// magic "UCP1" | uint32 payload length | uint32 CRC-32C | payload — whose
// payload is a self-contained gob encoding of the Record, appended with one
// Write call; a crash (even SIGKILL) mid-append leaves at most one torn
// frame at the end of the file. Resume recovery scans the journal front to
// back and truncates at the first frame that fails validation — a torn or
// corrupt tail costs only the cells it covered, never the records before
// it. There is no in-place mutation anywhere, so no write can corrupt an
// already-committed record.
//
// FAILED grid cells are deliberately never stored: the self-healing retry
// path in internal/experiment must re-run them fresh on resume rather than
// replay the failure.
package checkpoint

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Key is the content address of one cell result.
type Key [sha256.Size]byte

// String renders the key as lowercase hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyOf derives the content address of a cell from its coordinates. Each
// field is length-prefixed before hashing, so no two distinct
// (experiment, label, schema) triples can collide by concatenation.
func KeyOf(experiment, label, schema string) Key {
	h := sha256.New()
	var n [8]byte
	for _, s := range []string{experiment, label, schema} {
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		io.WriteString(h, s)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Record is one committed cell result: identity, the gob-encoded cell
// value, the cell's (timing-zeroed, hence deterministic) metrics snapshot,
// and how many attempts the cell took when it was computed — replayed on a
// cache hit so resumed run manifests match uninterrupted ones byte for
// byte.
type Record struct {
	Experiment string
	Label      string
	Schema     string
	Attempts   int
	// Value is the gob encoding of the cell's typed result.
	Value []byte
	// Metrics is the JSON encoding of the cell's metrics.Snapshot with
	// timing fields zeroed; nil when the run was uninstrumented.
	Metrics []byte
}

// Key returns the record's content address.
func (r *Record) Key() Key { return KeyOf(r.Experiment, r.Label, r.Schema) }

// Stats is a point-in-time view of one store session: the cache traffic
// since Open, the store contents, and what recovery found.
type Stats struct {
	// Hits, Misses count Lookup outcomes; Stores counts Put commits and
	// Errors counts failed Puts (the run continues, the cell is just not
	// cached).
	Hits, Misses, Stores, Errors int64
	// Records is the number of distinct keys currently in the store.
	Records int
	// Resumed reports whether Open recovered an existing journal.
	Resumed bool
	// TornBytes is the length of the invalid tail recovery dropped (0 for a
	// clean journal).
	TornBytes int64
	// DedupWaits counts JoinFlight calls that blocked behind another
	// goroutine computing the same key; DedupHits counts the subset that
	// were then served the leader's record instead of recomputing it — the
	// in-flight cross-job dedup the single-flight table provides on top of
	// the finished-cell cache.
	DedupWaits, DedupHits int64
	// Compactions counts Compact runs; CompactDropped totals the records
	// they dropped.
	Compactions, CompactDropped int64
}

// Store is the on-disk cell-result store. All methods are safe for
// concurrent use by grid workers — one store may be shared by every job of
// the daemon's pool, so identical cells across jobs are computed once.
type Store struct {
	mu   sync.Mutex
	j    *Journal
	dir  string
	recs map[Key]*Record
	// flights is the single-flight table: keys whose cell is being computed
	// right now, each with a channel closed when the computation resolves
	// (see JoinFlight/LeaveFlight).
	flights map[Key]chan struct{}

	resumed   bool
	tornBytes int64

	hits, misses, stores, errors atomic.Int64
	dedupWaits, dedupHits        atomic.Int64
	compactions, compactDropped  atomic.Int64
}

const (
	journalName = "cells.journal"
	// maxPayload bounds a frame's declared payload length. It exists so a
	// corrupt or hostile length field cannot make recovery attempt a
	// multi-gigabyte allocation; real cell records are a few KB.
	maxPayload = 64 << 20
)

var magic = [4]byte{'U', 'C', 'P', '1'}

// crcTable is the Castagnoli polynomial, chosen for its hardware support.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Create opens a fresh store in dir, discarding any existing journal. The
// directory is created if missing.
func Create(dir string) (*Store, error) { return open(dir, false) }

// Resume opens the store in dir, recovering the existing journal: every
// valid record prefix is loaded and a torn or corrupt tail is truncated
// away. A missing journal yields an empty store.
func Resume(dir string) (*Store, error) { return open(dir, true) }

func open(dir string, resume bool) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create dir: %w", err)
	}
	path := filepath.Join(dir, journalName)
	s := &Store{
		dir:     dir,
		recs:    make(map[Key]*Record),
		flights: make(map[Key]chan struct{}),
		resumed: resume,
	}
	if !resume {
		j, err := CreateJournal(path)
		if err != nil {
			return nil, err
		}
		s.j = j
		return s, nil
	}
	// A payload that frames correctly but no longer gob-decodes ends the
	// valid prefix exactly like a torn frame: the journal is truncated
	// there and the cells it covered recompute.
	j, err := ResumeJournal(path, func(payload []byte) bool {
		var r Record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&r); err != nil {
			return false
		}
		s.recs[r.Key()] = &r
		return true
	})
	if err != nil {
		return nil, err
	}
	s.tornBytes = j.TornBytes()
	s.j = j
	return s, nil
}

// decodeFrame parses one record frame from the front of data. ok=false
// means data does not start with a complete valid frame (torn tail,
// corruption, or simply empty) or the framed payload is not a Record.
func decodeFrame(data []byte) (rec *Record, n int64, ok bool) {
	payload, n, ok := decodePayloadFrame(data)
	if !ok {
		return nil, 0, false
	}
	var r Record
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&r); err != nil {
		return nil, 0, false
	}
	return &r, n, true
}

// encodeFrame renders one record as a self-contained journal frame.
func encodeFrame(rec *Record) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
		return nil, fmt.Errorf("checkpoint: encode record: %w", err)
	}
	return encodePayloadFrame(payload.Bytes())
}

// Lookup returns the record stored under k, counting the outcome in the
// session's hit/miss statistics.
func (s *Store) Lookup(k Key) (*Record, bool) {
	s.mu.Lock()
	rec, ok := s.recs[k]
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return rec, ok
}

// Put commits one record: a single journal append, so concurrent grid
// workers interleave whole frames and a crash can tear at most the final
// one. The in-memory index is updated only after the frame reached the
// journal. The store mutex is held across the append — appends already
// serialize on the journal's own mutex, so this costs no concurrency, and
// it guarantees Compact can never snapshot the index between a record's
// journal frame and its index entry (which would silently drop the frame
// from the rewritten journal).
func (s *Store) Put(rec Record) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&rec); err != nil {
		s.errors.Add(1)
		return fmt.Errorf("checkpoint: encode record: %w", err)
	}
	s.mu.Lock()
	if s.j == nil {
		s.mu.Unlock()
		s.errors.Add(1)
		return errors.New("checkpoint: store is closed")
	}
	if err := s.j.Append(payload.Bytes()); err != nil {
		s.mu.Unlock()
		s.errors.Add(1)
		return fmt.Errorf("checkpoint: append record: %w", err)
	}
	r := rec
	s.recs[r.Key()] = &r
	s.mu.Unlock()
	s.stores.Add(1)
	return nil
}

// CompactStats reports one Compact run.
type CompactStats struct {
	// Kept and Dropped count the records the rewritten journal retained and
	// discarded.
	Kept, Dropped int
	// BytesBefore and BytesAfter are the journal's on-disk size around the
	// rewrite; the difference includes duplicate and superseded frames the
	// rewrite deduplicated even when nothing was dropped.
	BytesBefore, BytesAfter int64
}

// Compact rewrites the journal to contain exactly the records keep retains
// (nil keeps everything), dropping discarded keys from the in-memory index.
// Even a keep-everything compaction is useful: the rewrite contains one
// frame per live key, so duplicate frames from crashed or concurrent
// sessions are squeezed out. The rewrite is atomic (temp file + fsync +
// rename — see Journal.Rewrite): a crash at any instant leaves either the
// old or the new journal fully valid. Concurrent Puts serialize against the
// compaction and land in the rewritten journal.
func (s *Store) Compact(keep func(*Record) bool) (CompactStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.j == nil {
		return CompactStats{}, errors.New("checkpoint: store is closed")
	}
	var st CompactStats
	if size, err := s.j.Size(); err == nil {
		st.BytesBefore = size
	}
	// Deterministic rewrite order (commit order is worker-scheduling noise).
	recs := make([]*Record, 0, len(s.recs))
	for _, rec := range s.recs {
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Experiment != recs[j].Experiment {
			return recs[i].Experiment < recs[j].Experiment
		}
		return recs[i].Label < recs[j].Label
	})
	payloads := make([][]byte, 0, len(recs))
	var dropped []Key
	for _, rec := range recs {
		if keep != nil && !keep(rec) {
			dropped = append(dropped, rec.Key())
			st.Dropped++
			continue
		}
		var payload bytes.Buffer
		if err := gob.NewEncoder(&payload).Encode(rec); err != nil {
			return st, fmt.Errorf("checkpoint: encode record: %w", err)
		}
		payloads = append(payloads, payload.Bytes())
		st.Kept++
	}
	if err := s.j.Rewrite(payloads); err != nil {
		return st, err
	}
	// Only forget dropped records once the rewrite is durable: a failed
	// rewrite leaves both the journal and the index as they were.
	for _, k := range dropped {
		delete(s.recs, k)
	}
	s.tornBytes = 0
	if size, err := s.j.Size(); err == nil {
		st.BytesAfter = size
	}
	s.compactions.Add(1)
	s.compactDropped.Add(int64(st.Dropped))
	return st, nil
}

// JoinFlight coordinates concurrent computation of the cell addressed by k
// — the in-flight counterpart of the finished-cell dedup Lookup provides.
// It returns (rec, false) when a committed record exists, possibly after
// blocking while another goroutine (the flight leader) computed it; and
// (nil, true) when the caller has become the leader and must compute the
// cell, then call LeaveFlight — via defer, so even a panicking computation
// releases the waiters. A leader that resolves without committing a record
// (failed or cancelled cell) promotes one waiter to leader, so the work is
// retried, never lost. A nil ctx waits indefinitely; a ctx that fires
// mid-wait returns (nil, false) — the caller computes on its own, losing
// only the dedup.
func (s *Store) JoinFlight(ctx context.Context, k Key) (*Record, bool) {
	waited := false
	for {
		s.mu.Lock()
		if rec, ok := s.recs[k]; ok {
			s.mu.Unlock()
			if waited {
				s.dedupHits.Add(1)
			}
			return rec, false
		}
		ch, inflight := s.flights[k]
		if !inflight {
			s.flights[k] = make(chan struct{})
			s.mu.Unlock()
			return nil, true
		}
		s.mu.Unlock()
		if !waited {
			waited = true
			s.dedupWaits.Add(1)
		}
		if ctx == nil {
			<-ch
			continue
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, false
		}
	}
}

// LeaveFlight resolves the flight a JoinFlight leader holds on k, waking
// every waiter (each re-checks the store: a committed record fans out, a
// missing one promotes the first waiter to leader). Idempotent.
func (s *Store) LeaveFlight(k Key) {
	s.mu.Lock()
	if ch, ok := s.flights[k]; ok {
		delete(s.flights, k)
		close(ch)
	}
	s.mu.Unlock()
}

// Sync flushes every committed record to stable storage (fsync on the
// journal). The daemon's drain path calls it before reporting a clean
// shutdown; a no-op on a closed store.
func (s *Store) Sync() error {
	s.mu.Lock()
	j := s.j
	s.mu.Unlock()
	if j == nil {
		return nil
	}
	return j.Sync()
}

// JournalSize reports the store journal's current on-disk length in bytes
// — the store's contribution to a state-directory byte budget.
func (s *Store) JournalSize() (int64, error) {
	s.mu.Lock()
	j := s.j
	s.mu.Unlock()
	if j == nil {
		return 0, errors.New("checkpoint: store is closed")
	}
	return j.Size()
}

// NoteError counts a store-related failure that happened outside the
// store's own methods (e.g. a record that no longer decodes into the
// caller's type), so session stats reflect every degraded interaction.
func (s *Store) NoteError() { s.errors.Add(1) }

// Len returns the number of distinct records in the store.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Hash returns a content hash of the whole store that is independent of
// record order (workers commit in completion order), so a resumed run and
// an uninterrupted run over the same grid report the same hash.
func (s *Store) Hash() string {
	s.mu.Lock()
	sums := make([][sha256.Size]byte, 0, len(s.recs))
	for k, rec := range s.recs {
		h := sha256.New()
		h.Write(k[:])
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(rec.Attempts))
		h.Write(n[:])
		binary.LittleEndian.PutUint64(n[:], uint64(len(rec.Value)))
		h.Write(n[:])
		h.Write(rec.Value)
		h.Write(rec.Metrics)
		var sum [sha256.Size]byte
		h.Sum(sum[:0])
		sums = append(sums, sum)
	}
	s.mu.Unlock()
	sort.Slice(sums, func(i, j int) bool { return bytes.Compare(sums[i][:], sums[j][:]) < 0 })
	h := sha256.New()
	for _, sum := range sums {
		h.Write(sum[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Each calls fn for every record, sorted by (experiment, label) so
// inspection output is deterministic regardless of commit order.
func (s *Store) Each(fn func(*Record)) {
	s.mu.Lock()
	recs := make([]*Record, 0, len(s.recs))
	for _, rec := range s.recs {
		recs = append(recs, rec)
	}
	s.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Experiment != recs[j].Experiment {
			return recs[i].Experiment < recs[j].Experiment
		}
		return recs[i].Label < recs[j].Label
	})
	for _, rec := range recs {
		fn(rec)
	}
}

// Stats returns the session's cache statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	records := len(s.recs)
	torn := s.tornBytes
	s.mu.Unlock()
	return Stats{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Stores:         s.stores.Load(),
		Errors:         s.errors.Load(),
		Records:        records,
		Resumed:        s.resumed,
		TornBytes:      torn,
		DedupWaits:     s.dedupWaits.Load(),
		DedupHits:      s.dedupHits.Load(),
		Compactions:    s.compactions.Load(),
		CompactDropped: s.compactDropped.Load(),
	}
}

// Close releases the journal handle. Further Puts fail; Lookups keep
// serving the in-memory index.
func (s *Store) Close() error {
	s.mu.Lock()
	j := s.j
	s.j = nil
	s.mu.Unlock()
	if j == nil {
		return nil
	}
	return j.Close()
}
