package checkpoint

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSingleFlightOneLeaderFansOut races N goroutines for one key: exactly
// one becomes leader and computes; every other goroutine gets the leader's
// committed record without recomputing.
func TestSingleFlightOneLeaderFansOut(t *testing.T) {
	s, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rec := testRecord("table1", "row=0 seed=0", 1, []byte{42})
	k := rec.Key()
	const n = 8
	var leaders, served atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, leader := s.JoinFlight(context.Background(), k)
			if leader {
				leaders.Add(1)
				defer s.LeaveFlight(k)
				time.Sleep(10 * time.Millisecond) // let waiters pile up
				mustPutConcurrent(t, s, rec)
				return
			}
			if got == nil {
				t.Error("non-leader got nil record with live context")
				return
			}
			if got.Value[0] != 42 {
				t.Errorf("fanned-out record has value %v", got.Value)
			}
			served.Add(1)
		}()
	}
	wg.Wait()
	if leaders.Load() != 1 {
		t.Fatalf("%d leaders, want exactly 1", leaders.Load())
	}
	if served.Load() != n-1 {
		t.Fatalf("%d waiters served, want %d", served.Load(), n-1)
	}
	st := s.Stats()
	if st.DedupHits == 0 || st.DedupWaits == 0 {
		t.Fatalf("dedup counters not bumped: waits=%d hits=%d", st.DedupWaits, st.DedupHits)
	}
	if st.DedupHits > st.DedupWaits {
		t.Fatalf("hits %d exceed waits %d", st.DedupHits, st.DedupWaits)
	}
}

// TestSingleFlightLeaderFailurePromotesWaiter: a leader that leaves without
// committing (failed or cancelled cell) must hand leadership to a waiter
// rather than wedging or losing the work.
func TestSingleFlightLeaderFailurePromotesWaiter(t *testing.T) {
	s, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	k := KeyOf("table1", "row=0 seed=0", "v1|test")
	if _, leader := s.JoinFlight(nil, k); !leader {
		t.Fatal("first joiner not leader")
	}
	promoted := make(chan bool, 1)
	go func() {
		_, leader := s.JoinFlight(nil, k)
		promoted <- leader
		if leader {
			s.LeaveFlight(k)
		}
	}()
	time.Sleep(10 * time.Millisecond) // waiter parks on the flight channel
	s.LeaveFlight(k)                  // leader abandons without a Put
	select {
	case leader := <-promoted:
		if !leader {
			t.Fatal("waiter not promoted to leader after leader abandoned")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter wedged after leader abandoned")
	}
}

func TestSingleFlightContextCancel(t *testing.T) {
	s, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	k := KeyOf("table1", "row=0 seed=0", "v1|test")
	if _, leader := s.JoinFlight(nil, k); !leader {
		t.Fatal("first joiner not leader")
	}
	defer s.LeaveFlight(k)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		rec, leader := s.JoinFlight(ctx, k)
		if rec != nil || leader {
			t.Errorf("cancelled join returned rec=%v leader=%v, want nil/false", rec, leader)
		}
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled JoinFlight did not return")
	}
}

// TestSingleFlightCommittedRecordShortCircuits: a key already in the store
// never creates a flight — the record comes back immediately.
func TestSingleFlightCommittedRecordShortCircuits(t *testing.T) {
	s, err := Create(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rec := testRecord("table1", "row=0 seed=0", 1, []byte{7})
	mustPut(t, s, rec)
	got, leader := s.JoinFlight(context.Background(), rec.Key())
	if leader || got == nil {
		t.Fatalf("JoinFlight on committed key: rec=%v leader=%v, want record/false", got, leader)
	}
	if st := s.Stats(); st.DedupWaits != 0 {
		t.Fatalf("short-circuit counted a wait: %d", st.DedupWaits)
	}
}
