package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzCheckpointDecode throws arbitrary bytes at both layers of journal
// reading. decodeFrame must never panic or over-read, and any frame it
// accepts must re-encode to one it accepts again with the same identity.
// Resume on the same bytes must recover a coherent store — every indexed
// record servable, the content hash computable — and its torn-tail
// truncation must leave a journal that resumes cleanly a second time.
func FuzzCheckpointDecode(f *testing.F) {
	valid, err := encodeFrame(&Record{
		Experiment: "table1", Label: "row=0 seed=0", Schema: "v1|s",
		Attempts: 1, Value: []byte{1, 2, 3},
		Metrics: []byte(`{"counters":[{"name":"c","value":1}]}`),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte(nil), valid...)
	flipped[9] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("UCP1 but not a frame at all"))
	f.Add(bytes.Repeat(valid, 3))
	// A frame claiming a huge payload: the length cap must reject it
	// without allocating.
	f.Add([]byte{'U', 'C', 'P', '1', 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, ok := decodeFrame(data)
		if ok {
			if n <= 0 || n > int64(len(data)) {
				t.Fatalf("accepted frame with length %d of %d input bytes", n, len(data))
			}
			enc, err := encodeFrame(rec)
			if err != nil {
				t.Fatalf("re-encode of accepted frame failed: %v", err)
			}
			rec2, n2, ok2 := decodeFrame(enc)
			if !ok2 || n2 != int64(len(enc)) {
				t.Fatalf("re-encoded frame rejected (ok=%v n=%d len=%d)", ok2, n2, len(enc))
			}
			if rec2.Key() != rec.Key() || rec2.Attempts != rec.Attempts {
				t.Fatalf("identity changed across re-encode: %v vs %v", rec.Key(), rec2.Key())
			}
		}

		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, journalName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Resume(dir)
		if err != nil {
			return // I/O-level refusal is fine; panics are the bug
		}
		s.Each(func(r *Record) {
			if _, ok := s.Lookup(r.Key()); !ok {
				t.Fatalf("recovered record %v not servable", r.Key())
			}
		})
		_ = s.Hash()
		recovered := s.Len()
		s.Close()

		s2, err := Resume(dir)
		if err != nil {
			t.Fatalf("re-resume after recovery: %v", err)
		}
		defer s2.Close()
		if s2.Len() != recovered {
			t.Fatalf("second resume found %d records, first found %d", s2.Len(), recovered)
		}
		if torn := s2.Stats().TornBytes; torn != 0 {
			t.Fatalf("journal still torn (%d bytes) after recovery truncated it", torn)
		}
	})
}
