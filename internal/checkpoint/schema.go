package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"strings"
)

// SchemaOf renders a canonical structural description of a Go type: field
// names and types for structs (exported fields only — gob encodes nothing
// else), element types for slices, arrays, maps and pointers, and the kind
// for basic types. Two types with the same SchemaOf string are
// gob-compatible field for field, so the string is safe to bake into a
// cell's content address: renaming, adding or retyping a result field
// changes the schema and silently invalidates every stale cached value
// instead of decoding it into the wrong shape.
func SchemaOf(t reflect.Type) string {
	var b strings.Builder
	writeSchema(&b, t, 0)
	return b.String()
}

// writeSchema is SchemaOf's recursion. depth caps pathological
// self-referential types; the experiment result types are small value
// structs, so the cap is never reached in practice.
func writeSchema(b *strings.Builder, t reflect.Type, depth int) {
	if depth > 16 {
		b.WriteString("...")
		return
	}
	switch t.Kind() {
	case reflect.Struct:
		b.WriteString("struct{")
		first := true
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			if !first {
				b.WriteByte(';')
			}
			first = false
			b.WriteString(f.Name)
			b.WriteByte(' ')
			writeSchema(b, f.Type, depth+1)
		}
		b.WriteByte('}')
	case reflect.Slice:
		b.WriteString("[]")
		writeSchema(b, t.Elem(), depth+1)
	case reflect.Array:
		fmt.Fprintf(b, "[%d]", t.Len())
		writeSchema(b, t.Elem(), depth+1)
	case reflect.Map:
		b.WriteString("map[")
		writeSchema(b, t.Key(), depth+1)
		b.WriteByte(']')
		writeSchema(b, t.Elem(), depth+1)
	case reflect.Pointer:
		b.WriteByte('*')
		writeSchema(b, t.Elem(), depth+1)
	default:
		b.WriteString(t.Kind().String())
	}
}

// EncodeValue gob-encodes one cell result. The encoding of a given value is
// deterministic (gob writes field deltas and IEEE-754 bit patterns), which
// is what makes the store hash stable across runs.
func EncodeValue(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("checkpoint: encode value: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeValue decodes a stored cell result into the typed destination
// pointer.
func DecodeValue(data []byte, dst any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(dst); err != nil {
		return fmt.Errorf("checkpoint: decode value: %w", err)
	}
	return nil
}
