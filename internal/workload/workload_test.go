package workload

import (
	"math"
	"testing"
	"testing/quick"

	"udwn/internal/geom"
	"udwn/internal/metric"
)

func TestUniformDiscBounds(t *testing.T) {
	pts := UniformDisc(500, 40, 1)
	if len(pts) != 500 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if p.X < 0 || p.X >= 40 || p.Y < 0 || p.Y >= 40 {
			t.Fatalf("point out of bounds: %v", p)
		}
	}
}

func TestUniformDiscDeterministic(t *testing.T) {
	a := UniformDisc(50, 10, 7)
	b := UniformDisc(50, 10, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same deployment")
		}
	}
	c := UniformDisc(50, 10, 8)
	if a[0] == c[0] && a[1] == c[1] && a[2] == c[2] {
		t.Fatal("different seeds should differ")
	}
}

func TestSideForDegreeCalibration(t *testing.T) {
	// Empirically verify that SideForDegree yields roughly the target
	// average degree.
	const n, target = 2000, 20
	rb := 9.0
	side := SideForDegree(n, target, rb)
	pts := UniformDisc(n, side, 3)
	grid := geom.NewGrid(pts, rb)
	sum := 0.0
	for i := range pts {
		sum += float64(grid.CountWithin(pts[i], rb) - 1)
	}
	avg := sum / n
	// Boundary effects push the realised degree slightly below target.
	if avg < 0.6*target || avg > 1.3*target {
		t.Fatalf("realised degree %.1f, want ≈ %d", avg, target)
	}
}

func TestGridLayout(t *testing.T) {
	pts := Grid(3, 4, 2)
	if len(pts) != 12 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0] != (geom.Point{X: 0, Y: 0}) || pts[11] != (geom.Point{X: 6, Y: 4}) {
		t.Fatalf("corners wrong: %v ... %v", pts[0], pts[11])
	}
}

func TestClusteredWithinBounds(t *testing.T) {
	pts := Clustered(300, 5, 2, 50, 4)
	if len(pts) != 300 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		if p.X < 0 || p.X > 50 || p.Y < 0 || p.Y > 50 {
			t.Fatalf("point out of bounds: %v", p)
		}
	}
	// Clustering: the mean nearest-neighbour distance should be well below
	// that of a uniform deployment of the same density.
	if nnMean(pts) > nnMean(UniformDisc(300, 50, 4)) {
		t.Fatal("clustered field is not denser locally than uniform")
	}
}

func nnMean(pts []geom.Point) float64 {
	total := 0.0
	for i, p := range pts {
		best := math.Inf(1)
		for j, q := range pts {
			if i != j {
				if d := p.Dist(q); d < best {
					best = d
				}
			}
		}
		total += best
	}
	return total / float64(len(pts))
}

func TestStripAndChain(t *testing.T) {
	pts := Strip(100, 200, 5, 6)
	for _, p := range pts {
		if p.X < 0 || p.X >= 200 || p.Y < 0 || p.Y >= 5 {
			t.Fatalf("strip point out of bounds: %v", p)
		}
	}
	chain := Chain(5, 3)
	if chain[4] != (geom.Point{X: 12, Y: 0}) {
		t.Fatalf("chain spacing wrong: %v", chain[4])
	}
}

func TestGeometricGraphSymmetric(t *testing.T) {
	pts := UniformDisc(100, 30, 8)
	adj := GeometricGraph(pts, 5)
	for u, nbrs := range adj {
		for _, v := range nbrs {
			if pts[u].Dist(pts[v]) > 5 {
				t.Fatalf("edge (%d,%d) beyond radius", u, v)
			}
			found := false
			for _, w := range adj[v] {
				if w == u {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) not symmetric", u, v)
			}
		}
	}
}

func TestHopDiameterChain(t *testing.T) {
	pts := Chain(10, 1)
	dist, diam := HopDiameter(pts, 1.5, 0)
	if diam != 9 {
		t.Fatalf("chain diameter = %d, want 9", diam)
	}
	for i, d := range dist {
		if d != i {
			t.Fatalf("dist[%d] = %d", i, d)
		}
	}
}

func TestConnected(t *testing.T) {
	if !Connected(Chain(10, 1), 1.5) {
		t.Fatal("chain with spacing 1 must be connected at r=1.5")
	}
	if Connected(Chain(10, 2), 1.5) {
		t.Fatal("chain with spacing 2 must be disconnected at r=1.5")
	}
	if !Connected(nil, 1) {
		t.Fatal("empty deployment is trivially connected")
	}
}

func TestLowerBoundGeometry(t *testing.T) {
	const n = 32
	r, eps := 10.0, 0.1
	inst := LowerBound(n, r, eps)
	rb := (1 - eps) * r
	mu := eps * (1 + eps) / (1 - eps)

	if inst.Bridge != n-2 || inst.Sink != n-1 || len(inst.Cluster) != n-2 {
		t.Fatal("instance roles wrong")
	}
	// Cluster pairwise distances = εR/8.
	want := eps * r / 8
	if d := inst.Space.Dist(0, 1); math.Abs(d-want) > 1e-12 {
		t.Fatalf("cluster spacing = %v, want %v", d, want)
	}
	// Cluster→bridge inside R (they are neighbours), cluster→sink beyond R.
	if d := inst.Space.Dist(0, inst.Bridge); d >= r {
		t.Fatalf("cluster-bridge = %v, must be < R", d)
	}
	if math.Abs(inst.Space.Dist(0, inst.Bridge)-mu*rb) > 1e-12 {
		t.Fatal("cluster-bridge distance wrong")
	}
	if d := inst.Space.Dist(0, inst.Sink); d <= r {
		t.Fatalf("cluster-sink = %v, must exceed R", d)
	}
	// Bridge→sink exactly RB.
	if d := inst.Space.Dist(inst.Bridge, inst.Sink); math.Abs(d-rb) > 1e-12 {
		t.Fatalf("bridge-sink = %v, want %v", d, rb)
	}
	// Symmetry.
	if inst.Space.Dist(inst.Sink, inst.Bridge) != inst.Space.Dist(inst.Bridge, inst.Sink) {
		t.Fatal("instance must be symmetric")
	}
}

func TestLowerBoundBoundedIndependence(t *testing.T) {
	// The instance is (εR/8, 1)-bounded independent: packings grow at most
	// linearly in q (here they are tiny because the cluster is a single
	// εR/8-ball).
	inst := LowerBound(64, 10, 0.1)
	rep := metric.CheckIndependence(inst.Space, []int{0, inst.Bridge, inst.Sink},
		0.1*10/8, 1, []float64{1, 2, 4, 8, 16})
	if rep.MaxC > 3 {
		t.Fatalf("independence constant too large: %v", rep.MaxC)
	}
}

func TestLowerBoundPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"n<3":    func() { LowerBound(2, 10, 0.1) },
		"eps=0":  func() { LowerBound(10, 10, 0) },
		"eps>.5": func() { LowerBound(10, 10, 0.6) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

// Property: hop distances from HopDiameter satisfy the triangle property
// along edges (BFS correctness surrogate) for random deployments.
func TestHopDiameterProperty(t *testing.T) {
	f := func(seed uint64) bool {
		pts := UniformDisc(60, 20, seed)
		adj := GeometricGraph(pts, 6)
		dist, _ := HopDiameter(pts, 6, 0)
		for u, nbrs := range adj {
			for _, v := range nbrs {
				du, dv := dist[u], dist[v]
				if du >= 0 && dv >= 0 && du-dv > 1 {
					return false
				}
				if (du >= 0) != (dv >= 0) {
					return false // adjacent nodes must share reachability
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformBox3Bounds(t *testing.T) {
	pts := UniformBox3(200, 25, 9)
	if len(pts) != 200 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		for d := 0; d < 3; d++ {
			if p[d] < 0 || p[d] >= 25 {
				t.Fatalf("coordinate out of bounds: %v", p)
			}
		}
	}
	a, b := UniformBox3(10, 5, 3), UniformBox3(10, 5, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the deployment")
		}
	}
}

func TestSideForDegree3Calibration(t *testing.T) {
	const n, target = 3000, 20
	rb := 9.0
	side := SideForDegree3(n, target, rb)
	pts := UniformBox3(n, side, 4)
	e := metric.NewEuclidean3(pts)
	// Sample interior nodes to dodge boundary effects.
	sum, cnt := 0.0, 0
	for u := 0; u < n; u += 10 {
		interior := true
		for d := 0; d < 3; d++ {
			if pts[u][d] < rb || pts[u][d] > side-rb {
				interior = false
			}
		}
		if !interior {
			continue
		}
		deg := 0
		for v := 0; v < n; v++ {
			if v != u && e.Dist(u, v) <= rb {
				deg++
			}
		}
		sum += float64(deg)
		cnt++
	}
	if cnt == 0 {
		t.Skip("no interior samples at this density")
	}
	avg := sum / float64(cnt)
	if avg < 0.6*target || avg > 1.5*target {
		t.Fatalf("interior degree %.1f, want ≈ %d", avg, target)
	}
}

func TestDegreeHelpersClampDegenerate(t *testing.T) {
	if SideForDegree(100, 0, 5) != SideForDegree(100, 1, 5) {
		t.Fatal("SideForDegree must clamp delta to 1")
	}
	if SideForDegree3(100, -2, 5) != SideForDegree3(100, 1, 5) {
		t.Fatal("SideForDegree3 must clamp delta to 1")
	}
}

func TestClusteredClampsBelowZero(t *testing.T) {
	// A huge spread forces samples beyond both borders; all must clamp.
	pts := Clustered(500, 2, 1000, 10, 11)
	for _, p := range pts {
		if p.X < 0 || p.X > 10 || p.Y < 0 || p.Y > 10 {
			t.Fatalf("unclamped point %v", p)
		}
	}
}
