// Package workload generates the network topologies the experiments run on:
// uniform random deployments (with degree control), grids, clustered fields,
// strips and chains (with diameter control), random geometric graphs for the
// BIG model, and the Theorem 5.3 lower-bound instance.
package workload

import (
	"math"

	"udwn/internal/geom"
	"udwn/internal/metric"
	"udwn/internal/rng"
)

// UniformDisc returns n points uniform in the [0, side]² square.
func UniformDisc(n int, side float64, seed uint64) []geom.Point {
	r := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, side), Y: r.Range(0, side)}
	}
	return pts
}

// SideForDegree returns the square side for which a uniform deployment of n
// nodes has expected neighbourhood size ≈ delta at communication radius rb.
func SideForDegree(n, delta int, rb float64) float64 {
	if delta < 1 {
		delta = 1
	}
	return math.Sqrt(float64(n) * math.Pi * rb * rb / float64(delta))
}

// UniformBox3 returns n points uniform in the [0, side]³ cube, for
// volumetric (λ = 3) deployments.
func UniformBox3(n int, side float64, seed uint64) [][3]float64 {
	r := rng.New(seed)
	pts := make([][3]float64, n)
	for i := range pts {
		pts[i] = [3]float64{r.Range(0, side), r.Range(0, side), r.Range(0, side)}
	}
	return pts
}

// SideForDegree3 returns the cube side for which a uniform 3-D deployment
// of n nodes has expected neighbourhood size ≈ delta at radius rb.
func SideForDegree3(n, delta int, rb float64) float64 {
	if delta < 1 {
		delta = 1
	}
	return math.Cbrt(float64(n) * 4 / 3 * math.Pi * rb * rb * rb / float64(delta))
}

// Grid returns rows×cols points on a lattice with the given spacing.
func Grid(rows, cols int, spacing float64) []geom.Point {
	pts := make([]geom.Point, 0, rows*cols)
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			pts = append(pts, geom.Point{X: float64(x) * spacing, Y: float64(y) * spacing})
		}
	}
	return pts
}

// Clustered returns n points grouped into clusters: cluster centres uniform
// in [0, side]², members Gaussian around their centre with the given spread.
// Clustered fields stress contention balancing with highly non-uniform
// density.
func Clustered(n, clusters int, spread, side float64, seed uint64) []geom.Point {
	if clusters < 1 {
		clusters = 1
	}
	r := rng.New(seed)
	centres := make([]geom.Point, clusters)
	for i := range centres {
		centres[i] = geom.Point{X: r.Range(0, side), Y: r.Range(0, side)}
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		c := centres[i%clusters]
		pts[i] = geom.Point{
			X: clampTo(c.X+spread*r.Norm(), side),
			Y: clampTo(c.Y+spread*r.Norm(), side),
		}
	}
	return pts
}

func clampTo(x, side float64) float64 {
	if x < 0 {
		return 0
	}
	if x > side {
		return side
	}
	return x
}

// Strip returns n points uniform in a [0, length]×[0, width] strip. With
// width on the order of the communication radius, the hop diameter grows
// linearly with length, giving diameter-controlled broadcast workloads.
func Strip(n int, length, width float64, seed uint64) []geom.Point {
	r := rng.New(seed)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Range(0, length), Y: r.Range(0, width)}
	}
	return pts
}

// Chain returns n points on a line with the given spacing — the minimal
// diameter-n workload.
func Chain(n int, spacing float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i) * spacing}
	}
	return pts
}

// GeometricGraph returns the adjacency lists of the geometric graph on pts
// with the given connection radius, used to derive BIG-model instances.
func GeometricGraph(pts []geom.Point, radius float64) [][]int {
	adj := make([][]int, len(pts))
	grid := geom.NewGrid(pts, radius)
	buf := make([]int, 0, 64)
	for u := range pts {
		buf = grid.Within(pts[u], radius, buf[:0])
		for _, v := range buf {
			if v != u {
				adj[u] = append(adj[u], v)
			}
		}
	}
	return adj
}

// HopDiameter returns the eccentricity structure of the geometric graph on a
// Euclidean deployment at radius rb: the hop distance from src to every node
// (-1 when unreachable) and the maximum over reachable nodes.
func HopDiameter(pts []geom.Point, rb float64, src int) (dist []int, diam int) {
	adj := GeometricGraph(pts, rb)
	dist = make([]int, len(pts))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				if dist[v] > diam {
					diam = dist[v]
				}
				queue = append(queue, v)
			}
		}
	}
	return dist, diam
}

// Connected reports whether the geometric graph on pts at radius rb is
// connected.
func Connected(pts []geom.Point, rb float64) bool {
	if len(pts) == 0 {
		return true
	}
	dist, _ := HopDiameter(pts, rb, 0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// LowerBoundInstance is the Theorem 5.3 construction (Fig. 1a): an
// (εR/8, 1)-bounded-independence quasi-metric in which broadcast without the
// NTD primitive needs Ω(n) rounds while the network is O(1)-broadcastable.
type LowerBoundInstance struct {
	// Space is the explicit distance matrix.
	Space *metric.Matrix
	// Bridge is the index of v_{n-1}, the unique node adjacent to the sink.
	Bridge int
	// Sink is the index of v_n, reachable only through Bridge.
	Sink int
	// Cluster lists the indices of v_1..v_{n-2}, the mutually close nodes.
	Cluster []int
}

// LowerBound builds the Theorem 5.3 instance over n nodes for communication
// radius r and precision eps: cluster nodes pairwise at εR/8 = δ·R_B,
// cluster–bridge at μ·R_B, bridge–sink at R_B and cluster–sink at (μ+1)·R_B,
// with μ = ε(1+ε)/(1−ε) < 1. It panics if n < 3 or eps is outside (0, 0.5].
func LowerBound(n int, r, eps float64) *LowerBoundInstance {
	if n < 3 {
		panic("workload: lower bound instance needs n >= 3")
	}
	if eps <= 0 || eps > 0.5 {
		panic("workload: lower bound instance needs eps in (0, 0.5]")
	}
	rb := (1 - eps) * r
	delta := eps / (8 * (1 - eps))
	mu := eps * (1 + eps) / (1 - eps)

	m := metric.NewMatrix(n, (mu+1)*rb)
	bridge, sink := n-2, n-1
	cluster := make([]int, 0, n-2)
	for i := 0; i < n-2; i++ {
		cluster = append(cluster, i)
		for j := i + 1; j < n-2; j++ {
			m.SetSym(i, j, delta*rb)
		}
		m.SetSym(i, bridge, mu*rb)
		m.SetSym(i, sink, (mu+1)*rb)
	}
	m.SetSym(bridge, sink, rb)
	return &LowerBoundInstance{Space: m, Bridge: bridge, Sink: sink, Cluster: cluster}
}
