package udwn_test

import (
	"fmt"

	"udwn"
	"udwn/internal/core"
	"udwn/internal/sim"
	"udwn/internal/workload"
)

// Example runs the paper's LocalBcast on a small SINR network: every node
// delivers its message to all of its neighbours using only carrier-sense
// bits and coin flips.
func Example() {
	const n = 64
	phy := udwn.DefaultPHY()
	rb := (1 - phy.Eps) * phy.Range
	pts := workload.UniformDisc(n, workload.SideForDegree(n, 12, rb), 42)

	nw := udwn.NewSINRNetwork(pts, phy)
	s, err := nw.NewSim(func(id int) sim.Protocol {
		return core.NewLocalBcast(n, int64(id))
	}, udwn.SimOptions{Seed: 7, Primitives: sim.CD | sim.ACK})
	if err != nil {
		fmt.Println(err)
		return
	}
	_, ok := s.RunUntil(func(s *sim.Sim) bool {
		for v := 0; v < n; v++ {
			if s.FirstMassDelivery(v) < 0 {
				return false
			}
		}
		return true
	}, 50000)
	fmt.Println("all nodes delivered:", ok)
	// Output: all nodes delivered: true
}

// ExampleNetwork_NewSim shows the two-slot configuration the global
// broadcast algorithm needs.
func ExampleNetwork_NewSim() {
	phy := udwn.DefaultPHY()
	pts := workload.Chain(8, 8)
	nw := udwn.NewSINRNetwork(pts, phy)
	s, err := nw.NewSim(func(id int) sim.Protocol {
		return core.NewBcastStar(8, 42, id == 0)
	}, udwn.SimOptions{
		Seed:       1,
		Slots:      2,
		SenseEps:   phy.Eps / 2,
		Primitives: sim.CD | sim.ACK | sim.NTD,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	s.MarkInformed(0)
	_, ok := s.RunUntil(func(s *sim.Sim) bool {
		for v := 0; v < 8; v++ {
			if s.FirstDecode(v) < 0 {
				return false
			}
		}
		return true
	}, 50000)
	fmt.Println("chain informed:", ok)
	// Output: chain informed: true
}
