// Package udwn is the public facade of the Unified Dynamic Wireless
// Networks library, a reproduction of "Data Dissemination in Unified Dynamic
// Wireless Networks" (Halldórsson, Tonoyan, Wang, Yu; PODC 2016 / arXiv
// 1605.02474).
//
// The facade bundles a topology, a communication model and the physical
// parameters into a Network, and constructs simulators over it. The
// algorithms live in internal/core (Try&Adjust, LocalBcast, Bcast, Bcast*,
// spontaneous dominating-set broadcast), the models in internal/model
// (SINR, UDG, UBG, QUDG, Protocol, BIG, k-hop) and the experiment harness in
// internal/experiment.
//
// A minimal local-broadcast run:
//
//	pts := workload.UniformDisc(256, 120, 1)
//	nw := udwn.NewSINRNetwork(pts, udwn.DefaultPHY())
//	s, err := nw.NewSim(func(id int) sim.Protocol {
//	    return core.NewLocalBcast(256, int64(id))
//	}, udwn.SimOptions{Seed: 7, Primitives: sim.CD | sim.ACK})
//	...
//	s.RunUntil(func(s *sim.Sim) bool { return allDelivered(s) }, 10000)
package udwn

import (
	"fmt"
	"math"

	"udwn/internal/geom"
	"udwn/internal/metric"
	"udwn/internal/metrics"
	"udwn/internal/model"
	"udwn/internal/sensing"
	"udwn/internal/sim"
)

// PHY holds the physical-layer parameters shared by all models.
type PHY struct {
	// Alpha is the path-loss exponent, which is also the metricity ζ of the
	// derived quasi-metric.
	Alpha float64
	// Beta is the SINR decoding threshold.
	Beta float64
	// Noise is the ambient noise level.
	Noise float64
	// Range is the maximum clear-channel communication distance R; the
	// transmit power is derived as P = β·N·R^α.
	Range float64
	// Eps is the precision parameter ε (R_B = (1−ε)·R in fading models).
	Eps float64
	// BusyScale calibrates the CD busy threshold (see sim.Config).
	BusyScale float64
	// AckScale calibrates the ACK threshold (see sim.Config).
	AckScale float64
}

// DefaultPHY returns the calibrated defaults used throughout the
// experiments: α = ζ = 3, β = 1.5, N = 1, R = 10, ε = 0.1.
func DefaultPHY() PHY {
	return PHY{
		Alpha:     3,
		Beta:      1.5,
		Noise:     1,
		Range:     10,
		Eps:       0.1,
		BusyScale: 0.25,
		AckScale:  8,
	}
}

// Power returns the uniform transmit power P = β·N·R^α.
func (p PHY) Power() float64 {
	return p.Beta * p.Noise * math.Pow(p.Range, p.Alpha)
}

// Network bundles a quasi-metric topology, a communication model and the
// physical parameters.
type Network struct {
	// Space is the quasi-metric the nodes live in.
	Space metric.Space
	// Model resolves receptions.
	Model model.Model
	// PHY holds the physical parameters.
	PHY PHY
}

// NewSINRNetwork builds an SINR network over Euclidean points.
func NewSINRNetwork(pts []geom.Point, phy PHY) *Network {
	return NewSINRSpace(metric.NewEuclidean(pts), phy)
}

// NewSINRSpace builds an SINR network over an arbitrary quasi-metric space
// (e.g. the Theorem 5.3 matrix instance or a shadowed space).
func NewSINRSpace(space metric.Space, phy PHY) *Network {
	return &Network{
		Space: space,
		Model: model.NewSINR(phy.Power(), phy.Beta, phy.Noise, phy.Alpha, phy.Eps),
		PHY:   phy,
	}
}

// TickSource supplies the current simulator tick to models that redraw
// per-slot state (Rayleigh fading). Bind it to the simulator after
// construction.
type TickSource struct {
	s *sim.Sim
}

// Bind attaches the source to a simulator.
func (t *TickSource) Bind(s *sim.Sim) { t.s = s }

// Tick returns the simulator's current tick, or 0 before binding.
func (t *TickSource) Tick() int {
	if t.s == nil {
		return 0
	}
	return t.s.Tick()
}

// NewRayleighNetwork builds an SINR network with per-slot Rayleigh fading.
// After constructing the simulator, bind the returned TickSource to it so
// fading coefficients redraw every slot:
//
//	nw, ts := udwn.NewRayleighNetwork(pts, phy, 7)
//	s, _ := nw.NewSim(factory, opts)
//	ts.Bind(s)
func NewRayleighNetwork(pts []geom.Point, phy PHY, seed uint64) (*Network, *TickSource) {
	ts := &TickSource{}
	nw := &Network{
		Space: metric.NewEuclidean(pts),
		Model: model.NewRayleighSINR(phy.Power(), phy.Beta, phy.Noise, phy.Alpha, phy.Eps,
			seed, ts.Tick),
		PHY: phy,
	}
	return nw, ts
}

// NewUDGNetwork builds a unit-disc-graph network over Euclidean points with
// communication radius phy.Range.
func NewUDGNetwork(pts []geom.Point, phy PHY) *Network {
	return &Network{
		Space: metric.NewEuclidean(pts),
		Model: model.NewUDG(phy.Range),
		PHY:   phy,
	}
}

// NewQUDGNetwork builds a quasi-UDG network: guaranteed edges within
// inner·phy.Range, grey zone out to phy.Range decided by greyEdge (nil =
// pessimistic).
func NewQUDGNetwork(pts []geom.Point, phy PHY, inner float64, greyEdge func(dist float64) bool) *Network {
	return &Network{
		Space: metric.NewEuclidean(pts),
		Model: model.NewQUDG(inner*phy.Range, phy.Range, greyEdge),
		PHY:   phy,
	}
}

// NewProtocolNetwork builds a protocol-model network with interference
// radius interf·phy.Range.
func NewProtocolNetwork(pts []geom.Point, phy PHY, interf float64) *Network {
	return &Network{
		Space: metric.NewEuclidean(pts),
		Model: model.NewProtocol(phy.Range, interf*phy.Range),
		PHY:   phy,
	}
}

// NewBIGNetwork builds a bounded-independence-graph network over the given
// adjacency lists, with interference reaching k hops. Only phy's sensing
// parameters are used; the hop metric fixes distances.
func NewBIGNetwork(adj [][]int, k int, phy PHY) *Network {
	return &Network{
		Space: metric.NewGraph(adj),
		Model: model.NewBIG(k),
		PHY:   phy,
	}
}

// SimOptions selects per-run simulator settings.
type SimOptions struct {
	// Seed keys all randomness of the run.
	Seed uint64
	// Slots per round (0 → 1). Bcast requires 2.
	Slots int
	// Async enables locally-synchronous clocks.
	Async bool
	// SenseEps overrides the primitive precision (0 → PHY.Eps). Bcast uses
	// PHY.Eps/2.
	SenseEps float64
	// Primitives grants sensing primitives.
	Primitives sim.Primitives
	// Dynamic marks the space mutable (mobility).
	Dynamic bool
	// Adversary resolves under-specified outcomes (nil → pessimistic).
	Adversary sim.Adversary
	// Channels is the number of orthogonal frequency channels (0 → 1).
	Channels int
	// TrackCoverage enables cumulative coverage accounting.
	TrackCoverage bool
	// Observer, when non-nil, is invoked after every resolved slot with a
	// summary event; wire a trace recorder's Record method here (see
	// internal/trace). The event's slices alias simulator scratch buffers
	// and are only valid during the call.
	Observer func(ev sim.SlotEvent)
	// Injector hooks deterministic fault injection into the tick loop
	// (crash schedules, jammers, sensing corruption; see internal/faults).
	Injector sim.Injector
	// Metrics, when non-nil, receives per-slot simulator instrumentation
	// under the "sim/" name prefix. One registry may be shared across runs;
	// its commutative counters merge deterministically.
	Metrics *metrics.Registry
	// FieldMode selects the interference-field driver: the incremental
	// engine (default) or the brute per-slot recompute. Runs are
	// byte-identical either way (see sim.FieldMode).
	FieldMode sim.FieldMode
	// FieldEpoch is the incremental field's forced-rebuild period in slots
	// (0 → the sim default of 256).
	FieldEpoch int
	// DisableQuiescence forces every slot to execute even when all
	// protocols promise inertness (see sim.Config.DisableQuiescence).
	DisableQuiescence bool
	// IndexMetrics additionally registers the "sim/index/*" spatial-index,
	// "sim/field/*" incremental-field and "sim/wheel/*" quiescence work
	// counters with Metrics (off by default to keep existing snapshot
	// instrument sets stable).
	IndexMetrics bool
	// Cancel, when non-nil, is polled at the top of every simulation step;
	// once it reports true the step panics with a sim.Cancelled sentinel,
	// cooperatively stopping the run (the experiment grid installs this
	// from its per-cell contexts and recovers the sentinel).
	Cancel func() bool
}

// NewSim constructs a simulator over the network.
func (nw *Network) NewSim(factory sim.ProtocolFactory, o SimOptions) (*sim.Sim, error) {
	cfg := sim.Config{
		Space:         nw.Space,
		Model:         nw.Model,
		P:             nw.PHY.Power(),
		Zeta:          nw.PHY.Alpha,
		Noise:         nw.PHY.Noise,
		Eps:           nw.PHY.Eps,
		SenseEps:      o.SenseEps,
		Slots:         o.Slots,
		Async:         o.Async,
		Seed:          o.Seed,
		Primitives:    o.Primitives,
		Adversary:     o.Adversary,
		Dynamic:       o.Dynamic,
		BusyScale:     nw.PHY.BusyScale,
		AckScale:      nw.PHY.AckScale,
		Channels:      o.Channels,
		TrackCoverage: o.TrackCoverage,
		Observer:      o.Observer,
		Injector:      o.Injector,
		Metrics:       o.Metrics,
		IndexMetrics:  o.IndexMetrics,
		Cancel:        o.Cancel,

		FieldMode:         o.FieldMode,
		FieldEpoch:        o.FieldEpoch,
		DisableQuiescence: o.DisableQuiescence,
	}
	s, err := sim.New(cfg, factory)
	if err != nil {
		return nil, fmt.Errorf("udwn: new sim: %w", err)
	}
	return s, nil
}

// NTDThreshold returns the near-transmission RSS threshold at the given
// sensing precision (0 → PHY.Eps), as needed by the spontaneous broadcast
// protocol to classify receipts.
func (nw *Network) NTDThreshold(senseEps float64) float64 {
	if senseEps == 0 {
		senseEps = nw.PHY.Eps
	}
	th := sensing.NewThresholds(nw.PHY.Power(), nw.PHY.Alpha, senseEps,
		nw.Model.R(), nw.Model.Params())
	return th.NTDRSS
}

// CommRadius returns the dissemination neighbourhood radius R_B of the
// network's model at precision PHY.Eps.
func (nw *Network) CommRadius() float64 { return nw.Model.CommRadius(nw.PHY.Eps) }
