// Benchmarks regenerating every table and figure of the evaluation suite at
// reduced (quick) scale: one benchmark per DESIGN.md §3 entry. Each
// iteration executes the complete experiment — all cells, one seed — so
// ns/op measures the cost of regenerating that table. Run the full-scale
// versions with cmd/experiments.
package udwn_test

import (
	"runtime"
	"testing"

	"udwn/internal/experiment"
)

// benchOptions pins Workers to 1 so ns/op measures the single-core cost of
// regenerating a table, comparable across machines and with the recorded
// EXPERIMENTS.md baselines. BenchmarkTable3BroadcastParallel measures the
// same grid with the full worker pool for the speed-up.
func benchOptions() experiment.Options {
	o := experiment.QuickOptions()
	o.Seeds = 1
	o.Workers = 1
	return o
}

// BenchmarkTable3BroadcastParallel regenerates Table 3 with one worker per
// CPU; compare against BenchmarkTable3Broadcast for the parallel speed-up
// (the outputs are byte-identical — see TestWorkersDeterminism).
func BenchmarkTable3BroadcastParallel(b *testing.B) {
	o := benchOptions()
	o.Workers = runtime.NumCPU()
	for i := 0; i < b.N; i++ {
		if experiment.Table3Broadcast(o).String() == "" {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure1Contention(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if experiment.Figure1Contention(o).String() == "" {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable1LocalBcastDelta(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if experiment.Table1LocalDelta(o).String() == "" {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable2LocalBcastN(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if experiment.Table2LocalN(o).String() == "" {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable3Broadcast(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if experiment.Table3Broadcast(o).String() == "" {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable4Dynamics(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if experiment.Table4Dynamics(o).String() == "" {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable5CrossModel(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if experiment.Table5CrossModel(o).String() == "" {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure2LowerBound(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if experiment.Figure2LowerBound(o).String() == "" {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable7NoCS(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if experiment.Table7NoCS(o).String() == "" {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable8Fading(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if experiment.Table8Fading(o).String() == "" {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure3CDF(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if experiment.Figure3CDF(o).String() == "" {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable6Ablations(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if experiment.Table6Ablations(o).String() == "" {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable9MultiMessage(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if experiment.Table9MultiMessage(o).String() == "" {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure4Stabilisation(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if experiment.Figure4Stabilisation(o).String() == "" {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable10MultiChannel(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if experiment.Table10MultiChannel(o).String() == "" {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable11StableDistance(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if experiment.Table11StableDistance(o).String() == "" {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable12Faults(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if experiment.Table12Faults(o).String() == "" {
			b.Fatal("empty result")
		}
	}
}
